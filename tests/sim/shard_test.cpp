// Targeted tests for the conservative parallel engine (sim/shard.hpp).
//
// The workload-level golden suite pins end-to-end bit-identity; these tests
// pin the engine contract in isolation, where failures localize: the
// canonical (when, t_sched, src_shard, seq) merge order for cross-shard
// deposits and horizon-deferred events, the degenerate one-shard path, the
// run_until clock-parking semantics, and — as a catch-all — a randomized
// node graph executed on 1/2/4 shards and checked state-for-state against
// the sequential engine.
#include "sim/shard.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/units.hpp"

namespace gputn::sim {
namespace {

constexpr Tick kLookahead = ns(100);

TEST(ShardEngine, CrossShardPostMergesInCanonicalOrder) {
  ShardEngine eng(2);
  eng.set_lookahead(kLookahead);
  std::vector<int> log;  // only shard 1 appends: single-threaded per round

  // Shard 0 emits two deposits for the same destination timestamp from one
  // tick — program order (the shared emit counter) must survive the merge.
  eng.shard(0).schedule_at(ns(10), [&] {
    Tick when = eng.shard(0).now() + kLookahead;
    eng.post(0, 1, when, [&] { log.push_back(2); });
    eng.post(0, 1, when, [&] { log.push_back(3); });
  });
  // Shard 1 schedules a local event at that same timestamp one tick EARLIER
  // (t_sched ns(9) < ns(10)): sequentially it would have the smaller
  // sequence number, so it must run first despite arriving via deferral.
  eng.shard(1).schedule_at(ns(9), [&] {
    eng.shard(1).schedule_at(ns(110), [&] { log.push_back(1); });
  });
  eng.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(ShardEngine, DeferredLocalEventsKeepProgramOrder) {
  ShardEngine eng(2);
  eng.set_lookahead(kLookahead);
  std::vector<int> log;
  // Both schedules land past the first window's horizon (gmin=ns(1), so
  // horizon ns(101)) and divert to the deferral buffer; re-insertion must
  // preserve their emit order at the equal timestamp.
  eng.shard(0).schedule_at(ns(1), [&] {
    eng.shard(0).schedule_at(ns(500), [&] { log.push_back(1); });
    eng.shard(0).schedule_at(ns(500), [&] { log.push_back(2); });
  });
  // Keep shard 1 busy so the run is genuinely multi-shard.
  eng.shard(1).schedule_at(ns(1), [] {});
  eng.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(ShardEngine, OneShardIsTheSequentialEngine) {
  // shards == 1 must behave exactly like a bare Simulator: no lookahead
  // configured, no horizon, identical timestamps.
  Simulator ref;
  ShardEngine eng(1);
  std::vector<Tick> ref_ts, eng_ts;
  for (int i = 0; i < 5; ++i) {
    ref.schedule_at(us(i + 1), [&] { ref_ts.push_back(ref.now()); });
    eng.shard(0).schedule_at(us(i + 1),
                             [&] { eng_ts.push_back(eng.shard(0).now()); });
  }
  ref.run();
  EXPECT_EQ(eng.run(), 5u);
  EXPECT_EQ(eng_ts, ref_ts);
  EXPECT_EQ(eng.shard(0).now(), ref.now());
  EXPECT_EQ(eng.executed_events(), ref.executed_events());
}

TEST(ShardEngine, RunUntilParksEveryClock) {
  ShardEngine eng(2);
  eng.set_lookahead(kLookahead);
  eng.shard(0).schedule_at(ns(50), [] {});
  eng.shard(1).schedule_at(ns(700), [] {});
  EXPECT_EQ(eng.run_until(us(3)), 2u);
  // Sequential run_until parks the one clock at `until`; every shard must
  // land there too so cross-phase code sees a single consistent time.
  EXPECT_EQ(eng.shard(0).now(), us(3));
  EXPECT_EQ(eng.shard(1).now(), us(3));
}

TEST(ShardEngine, NextTimeFoldsMailboxedDeposits) {
  ShardEngine eng(2);
  eng.set_lookahead(kLookahead);
  bool ran = false;
  eng.shard(0).schedule_at(ns(10), [&] {
    eng.post(0, 1, eng.shard(0).now() + kLookahead, [&] { ran = true; });
  });
  EXPECT_EQ(eng.next_time(), ns(10));
  EXPECT_TRUE(eng.step(eng.next_time()));  // runs the ns(10) tick only
  // The deposit is sitting in a mailbox; next_time() must see it anyway.
  EXPECT_EQ(eng.next_time(), ns(110));
  while (eng.step(kTickMax)) {
  }
  EXPECT_TRUE(ran);
}

TEST(ShardEngine, EmptyEngineRunTerminates) {
  ShardEngine eng(2);
  eng.set_lookahead(kLookahead);
  EXPECT_EQ(eng.run(), 0u);          // nothing pending: run() must return
  EXPECT_EQ(eng.run_until(us(1)), 0u);
  EXPECT_FALSE(eng.step(kTickMax));  // and step() must refuse, not spin
}

// Reference-model fuzz: a random graph of message-passing "nodes" executed
// sequentially and on 2/4 shards. Every event appends a hash of (node,
// execution time, payload) to its node's history and randomly emits local
// follow-ups (small deltas, exercising the deferral horizon) and remote
// sends at >= now + lookahead (the Fabric contract, exercising the mailbox
// merge). Histories must be bit-identical across engines.
struct FuzzWorld {
  static constexpr int kNodes = 8;
  std::vector<std::vector<std::uint64_t>> history{kNodes};
  std::vector<Simulator*> node_sim;  // node -> owning simulator
  std::vector<int> node_shard;       // node -> shard (all 0 when sequential)
  ShardEngine* engine = nullptr;     // null for the sequential reference

  /// Deterministic per-event RNG: a function of the event's identity only,
  /// never of engine-dependent counters.
  static std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
    std::uint64_t x = a * 0x9e3779b97f4a7c15ull ^ (b + 0x517cc1b727220a95ull);
    x ^= x >> 32;
    x *= 0xd6e8feb86659fd93ull;
    return x ^ (x >> 32);
  }

  void event(int node, std::uint64_t payload, int depth) {
    Simulator& sim = *node_sim[static_cast<std::size_t>(node)];
    Tick now = sim.now();
    history[static_cast<std::size_t>(node)].push_back(
        mix(static_cast<std::uint64_t>(node) ^ payload,
            static_cast<std::uint64_t>(now)));
    if (depth <= 0) return;
    std::uint64_t r = mix(payload, static_cast<std::uint64_t>(now) + depth);
    // Local follow-up: a small delta that lands inside, at, or past the
    // conservative horizon depending on the round's gmin.
    if (r % 4 != 0) {
      Tick when = now + static_cast<Tick>(r % 250000);  // 0..250 ns
      sim.schedule_at(when,
                      [this, node, r, depth] { event(node, r, depth - 1); });
    }
    // Remote send: always >= now + lookahead, like a wire hop.
    if (r % 3 != 0) {
      int dst = static_cast<int>((r >> 8) % kNodes);
      Tick when = now + kLookahead + static_cast<Tick>((r >> 16) % 300000);
      std::uint64_t pay = mix(r, static_cast<std::uint64_t>(dst));
      auto fn = [this, dst, pay, depth] { event(dst, pay, depth - 1); };
      int src_sh = node_shard[static_cast<std::size_t>(node)];
      int dst_sh = node_shard[static_cast<std::size_t>(dst)];
      if (engine != nullptr && src_sh != dst_sh) {
        engine->post(src_sh, dst_sh, when, std::move(fn));
      } else {
        node_sim[static_cast<std::size_t>(dst)]->schedule_at(when,
                                                             std::move(fn));
      }
    }
  }
};

std::vector<std::vector<std::uint64_t>> fuzz_run(int shards,
                                                 std::uint64_t seed) {
  FuzzWorld w;
  Simulator seq;
  ShardEngine eng(shards > 1 ? shards : 1);
  for (int n = 0; n < FuzzWorld::kNodes; ++n) {
    int sh = shards > 1 ? n * shards / FuzzWorld::kNodes : 0;
    w.node_shard.push_back(sh);
    w.node_sim.push_back(shards > 1 ? &eng.shard(sh) : &seq);
  }
  if (shards > 1) {
    w.engine = &eng;
    eng.set_lookahead(kLookahead);
  }
  std::mt19937_64 rng(seed);
  for (int i = 0; i < 24; ++i) {
    int node = static_cast<int>(rng() % FuzzWorld::kNodes);
    Tick at = static_cast<Tick>(rng() % 2000000);  // 0..2 us
    std::uint64_t pay = rng();
    w.node_sim[static_cast<std::size_t>(node)]->schedule_at(
        at, [&w, node, pay] { w.event(node, pay, 6); });
  }
  if (shards > 1) {
    eng.run();
  } else {
    seq.run();
  }
  return w.history;
}

TEST(ShardEngine, RandomizedMatchesSequentialReference) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    auto ref = fuzz_run(1, seed);
    std::size_t total = 0;
    for (const auto& h : ref) total += h.size();
    ASSERT_GT(total, 100u) << "seed=" << seed << " degenerate schedule";
    EXPECT_EQ(fuzz_run(2, seed), ref) << "seed=" << seed;
    EXPECT_EQ(fuzz_run(4, seed), ref) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace gputn::sim

#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/units.hpp"

namespace gputn::sim {
namespace {

TEST(Simulator, ExecutesEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(ns(30), [&] { order.push_back(3); });
  sim.schedule_at(ns(10), [&] { order.push_back(1); });
  sim.schedule_at(ns(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), ns(30));
}

TEST(Simulator, EqualTimesExecuteInInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    sim.schedule_at(ns(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 50) sim.schedule_in(ns(1), chain);
  };
  sim.schedule_in(ns(1), chain);
  sim.run();
  EXPECT_EQ(depth, 50);
  EXPECT_EQ(sim.now(), ns(50));
}

TEST(Simulator, RunUntilStopsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(ns(10), [&] { ++fired; });
  sim.schedule_at(ns(100), [&] { ++fired; });
  sim.run_until(ns(50));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), ns(50));
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CoroutineDelayAdvancesTime) {
  Simulator sim;
  Tick finished = -1;
  sim.spawn(
      [](Simulator& s, Tick& out) -> Task<> {
        co_await s.delay(us(3));
        co_await s.delay(us(4));
        out = s.now();
      }(sim, finished),
      "delayer");
  sim.run();
  EXPECT_EQ(finished, us(7));
  EXPECT_EQ(sim.live_processes(), 0);
}

TEST(Simulator, TaskReturnValuesPropagate) {
  Simulator sim;
  int result = 0;
  auto child = [](Simulator& s) -> Task<int> {
    co_await s.delay(ns(1));
    co_return 99;
  };
  sim.spawn(
      [](Simulator& s, int& out, auto mk) -> Task<> {
        out = co_await mk(s);
      }(sim, result, child),
      "parent");
  sim.run();
  EXPECT_EQ(result, 99);
}

TEST(Simulator, JoinWaitsForProcess) {
  Simulator sim;
  auto h = sim.spawn(
      [](Simulator& s) -> Task<> { co_await s.delay(us(5)); }(sim), "w");
  Tick joined_at = -1;
  sim.spawn(
      [](Simulator& s, ProcessHandle ph, Tick& out) -> Task<> {
        co_await ph.join();
        out = s.now();
      }(sim, h, joined_at),
      "joiner");
  sim.run();
  EXPECT_EQ(joined_at, us(5));
  EXPECT_TRUE(h.finished());
}

TEST(Simulator, ExceptionsPropagateThroughJoin) {
  Simulator sim;
  auto h = sim.spawn(
      [](Simulator& s) -> Task<> {
        co_await s.delay(ns(1));
        throw std::runtime_error("boom");
      }(sim),
      "thrower");
  bool caught = false;
  sim.spawn(
      [](ProcessHandle ph, bool& out) -> Task<> {
        try {
          co_await ph.join();
        } catch (const std::runtime_error&) {
          out = true;
        }
      }(h, caught),
      "catcher");
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(Simulator, ExceptionsPropagateThroughAwait) {
  Simulator sim;
  bool caught = false;
  auto child = [](Simulator& s) -> Task<> {
    co_await s.delay(ns(1));
    throw std::logic_error("inner");
  };
  sim.spawn(
      [](Simulator& s, bool& out, auto mk) -> Task<> {
        try {
          co_await mk(s);
        } catch (const std::logic_error&) {
          out = true;
        }
      }(sim, caught, child),
      "outer");
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(Simulator, SynchronouslyCompletingProcess) {
  Simulator sim;
  bool ran = false;
  auto h = sim.spawn(
      [](bool& out) -> Task<> {
        out = true;
        co_return;
      }(ran),
      "sync");
  EXPECT_TRUE(ran);
  EXPECT_TRUE(h.finished());
  sim.run();
  EXPECT_EQ(sim.live_processes(), 0);
}

TEST(Simulator, ReapProcessesKillsServiceLoops) {
  Simulator sim;
  sim.spawn(
      [](Simulator& s) -> Task<> {
        for (;;) co_await s.delay(us(1));
      }(sim),
      "forever");
  sim.run_until(us(10));
  EXPECT_EQ(sim.live_processes(), 1);
  sim.reap_processes();
  EXPECT_EQ(sim.live_processes(), 0);
}

TEST(Simulator, DeterministicEventCounts) {
  auto run_once = [] {
    Simulator sim;
    for (int i = 0; i < 10; ++i) {
      sim.spawn(
          [](Simulator& s, int reps) -> Task<> {
            for (int r = 0; r < reps; ++r) co_await s.delay(ns(10 + reps));
          }(sim, i + 1),
          "p");
    }
    sim.run();
    return std::pair{sim.now(), sim.executed_events()};
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace gputn::sim

// The shared JSON reader (sim/json.hpp): one parser behind gputn report,
// gputn analyze, and gputn whatif, with both error disciplines pinned —
// parse() throws std::runtime_error naming a byte offset, try_parse()
// returns nullopt on exactly the same inputs. These behaviors are load-
// bearing: the CLI maps the throw to a nonzero exit for corrupt baseline
// files, and tests use try_parse as a strict validity check on exporters.
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "sim/json.hpp"

namespace gputn::sim::json {
namespace {

TEST(JsonReader, ParsesTheExporterSubset) {
  Value v = parse(R"({"name": "x", "n": -2.5e3, "ok": true,
                      "none": null, "list": [1, 2, 3], "nested": {"a": 1}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("name").string, "x");
  EXPECT_DOUBLE_EQ(v.at("n").number, -2500.0);
  EXPECT_TRUE(v.at("ok").boolean);
  EXPECT_EQ(v.at("none").kind, Value::Kind::kNull);
  ASSERT_TRUE(v.at("list").is_array());
  ASSERT_EQ(v.at("list").array->size(), 3u);
  EXPECT_DOUBLE_EQ((*v.at("list").array)[2].number, 3.0);
  EXPECT_DOUBLE_EQ(v.at("nested").at("a").number, 1.0);
  EXPECT_TRUE(v.has("name"));
  EXPECT_FALSE(v.has("absent"));
}

TEST(JsonReader, RoundTripsEscapedStrings) {
  // json_escape output must come back byte-identical through the reader —
  // the report/whatif baselines carry escaped resource names.
  const std::string raw = "a\"b\\c\nd\te\x01f";
  Value v = parse("{\"s\": \"" + json_escape(raw) + "\"}");
  EXPECT_EQ(v.at("s").string, raw);
}

TEST(JsonReader, ThrowsWithByteOffsetOnMalformedInput) {
  for (const char* bad :
       {"{", "{\"a\": }", "[1, 2", "{\"a\" 1}", "tru", "\"unterminated",
        "{\"a\": 1} trailing", "nul", "{\"a\": 01x}", ""}) {
    try {
      parse(bad);
      FAIL() << "no throw for: " << bad;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("invalid JSON at byte"),
                std::string::npos)
          << bad;
    }
  }
}

TEST(JsonReader, TryParseMirrorsParse) {
  // Same code path, nullopt discipline: whatever parse() throws on,
  // try_parse() rejects; whatever parse() accepts, try_parse() accepts.
  EXPECT_TRUE(try_parse("{\"a\": [1, true, null]}").has_value());
  EXPECT_FALSE(try_parse("{\"a\": [1, true, null]").has_value());
  EXPECT_FALSE(try_parse("{} {}").has_value());
  EXPECT_FALSE(try_parse("").has_value());
}

}  // namespace
}  // namespace gputn::sim::json

#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include "../support/json_lite.hpp"
#include "sim/random.hpp"

namespace gputn::sim {
namespace {

TEST(Accumulator, BasicMoments) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
  EXPECT_NEAR(a.stddev(), 2.138, 1e-3);
}

TEST(Accumulator, EmptyIsSafe) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(Accumulator, ResetClears) {
  Accumulator a;
  a.add(10.0);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
}

TEST(Histogram, BucketsByPowerOfTwo) {
  Histogram h;
  h.add(0);   // bucket 0
  h.add(1);   // bucket 1
  h.add(2);   // bucket 2
  h.add(3);   // bucket 2
  h.add(4);   // bucket 3
  h.add(255); // bucket 8
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.bucket_count(8), 1u);
  EXPECT_EQ(h.bucket_count(20), 0u);
}

TEST(Histogram, QuantilesOfConstantStream) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.add(10);
  // All mass sits in one bucket; interpolation is clamped to the observed
  // max, so every quantile reports the constant exactly.
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 10.0);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
}

TEST(Histogram, QuantilesOfUniformStream) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.add(v);
  double p50 = h.quantile(0.50);
  double p90 = h.quantile(0.90);
  double p99 = h.quantile(0.99);
  // Linear interpolation inside a power-of-two bucket is near-exact for a
  // uniform stream.
  EXPECT_NEAR(p50, 500.0, 30.0);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, h.max());
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
}

TEST(Histogram, QuantileEdgeCases) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty
  h.add(0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // zero bucket
}

TEST(Histogram, SingleSampleQuantileIsTheSample) {
  // Pow2-bucket interpolation would otherwise report a point inside the
  // sample's bucket span (e.g. ~6 for a lone 7 in bucket [4,8)); with one
  // sample every quantile must be that sample.
  Histogram h;
  h.add(7);
  EXPECT_DOUBLE_EQ(h.quantile(0.01), 7.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 7.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 7.0);
}

TEST(Histogram, P999SingleBucketAndClampEdgeCases) {
  // Single-bucket stream: every sample is 10, so the extreme tail quantile
  // must clamp to the constant (the bucket [8,16) would otherwise let
  // interpolation report ~16 for q -> 1).
  Histogram constant;
  for (int i = 0; i < 2000; ++i) constant.add(10);
  EXPECT_DOUBLE_EQ(constant.quantile(0.999), 10.0);

  // One sample: p999 is that sample, like every other quantile.
  Histogram lone;
  lone.add(7);
  EXPECT_DOUBLE_EQ(lone.quantile(0.999), 7.0);

  // Clamp: p999 can never exceed the observed max, and the tail ordering
  // p99 <= p999 <= max must hold on a skewed stream whose covering bucket
  // edge (2048) lies above the observed max.
  Histogram skewed;
  for (std::uint64_t v = 1; v <= 1000; ++v) skewed.add(v);
  skewed.add(1500);  // bucket [1024, 2048), max well under the edge
  EXPECT_LE(skewed.quantile(0.99), skewed.quantile(0.999));
  EXPECT_LE(skewed.quantile(0.999), skewed.max());
  EXPECT_DOUBLE_EQ(skewed.max(), 1500.0);
}

TEST(Histogram, AllZeroSamplesQuantileIsZero) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.add(0);
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
}

TEST(Histogram, QuantileClampedToObservedRange) {
  // Bucket edges can lie outside [min, max]; quantiles must not.
  Histogram h;
  h.add(5);
  h.add(5);
  h.add(6);
  for (double q : {0.01, 0.5, 0.9, 0.99}) {
    EXPECT_GE(h.quantile(q), h.min());
    EXPECT_LE(h.quantile(q), h.max());
  }
}

TEST(Accumulator, EmptyMinMaxAreZeroNotNan) {
  // Documented NaN-free sentinel: min()/max() on an empty accumulator
  // return 0.0 so exports and reports never emit NaN; callers that care
  // check count() first.
  Accumulator a;
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
  EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, MergeMatchesSingleStream) {
  Accumulator a, b, all;
  for (double x : {2.0, 4.0, 4.0, 4.0}) {
    a.add(x);
    all.add(x);
  }
  for (double x : {5.0, 5.0, 7.0, 9.0}) {
    b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.mean(), all.mean());
  EXPECT_DOUBLE_EQ(a.sum(), all.sum());
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  EXPECT_NEAR(a.stddev(), all.stddev(), 1e-12);

  Accumulator empty;
  a.merge(empty);  // merging an empty accumulator is a no-op
  EXPECT_EQ(a.count(), all.count());
}

TEST(Histogram, MergeAddsBucketwise) {
  Histogram a, b, all;
  for (std::uint64_t v = 1; v <= 500; ++v) {
    a.add(v);
    all.add(v);
  }
  for (std::uint64_t v = 501; v <= 1000; ++v) {
    b.add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  for (std::size_t bkt = 0; bkt < 12; ++bkt) {
    EXPECT_EQ(a.bucket_count(bkt), all.bucket_count(bkt)) << "bucket " << bkt;
  }
  EXPECT_DOUBLE_EQ(a.quantile(0.9), all.quantile(0.9));
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StatRegistry, HistogramSlot) {
  StatRegistry r;
  r.histogram("lat.wire").add(100);
  r.histogram("lat.wire").add(200);
  ASSERT_NE(r.find_histogram("lat.wire"), nullptr);
  EXPECT_EQ(r.find_histogram("lat.wire")->count(), 2u);
  EXPECT_EQ(r.find_histogram("absent"), nullptr);
  EXPECT_NE(r.to_string().find("lat.wire:"), std::string::npos);
}

TEST(StatRegistry, StatsJsonShape) {
  StatRegistry r;
  r.counter("net.pkts") = 12;
  r.accumulator("rel.rtt").add(3.5);
  for (std::uint64_t v = 1; v <= 100; ++v) r.histogram("lat.wire").add(v);

  std::string text = stats_json(r);
  auto parsed = test::json::parse(text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_object());
  EXPECT_DOUBLE_EQ(parsed->at("counters").at("net.pkts").number, 12.0);
  EXPECT_DOUBLE_EQ(parsed->at("accumulators").at("rel.rtt").at("count").number,
                   1.0);
  const auto& h = parsed->at("histograms").at("lat.wire");
  EXPECT_DOUBLE_EQ(h.at("count").number, 100.0);
  for (const char* q : {"p50", "p90", "p99", "max"}) {
    ASSERT_TRUE(h.has(q)) << q;
  }
  EXPECT_LE(h.at("p50").number, h.at("p90").number);
  EXPECT_LE(h.at("p90").number, h.at("p99").number);
  EXPECT_LE(h.at("p99").number, h.at("max").number);
  EXPECT_TRUE(h.at("buckets").is_array());

  // Same contents serialize identically (maps iterate sorted).
  EXPECT_EQ(text, stats_json(r));
}

TEST(StatRegistry, CountersAndAccumulators) {
  StatRegistry r;
  ++r.counter("puts");
  ++r.counter("puts");
  r.accumulator("latency").add(3.0);
  EXPECT_EQ(r.counter_value("puts"), 2u);
  EXPECT_EQ(r.counter_value("absent"), 0u);
  EXPECT_EQ(r.accumulators().at("latency").count(), 1u);
  EXPECT_NE(r.to_string().find("puts = 2"), std::string::npos);
}

TEST(Rng, DeterministicWithSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000000), b.uniform_int(0, 1000000));
  }
}

TEST(Rng, UniformIntInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    auto v = r.uniform_int(5, 10);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 10);
  }
}

}  // namespace
}  // namespace gputn::sim

#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include "sim/random.hpp"

namespace gputn::sim {
namespace {

TEST(Accumulator, BasicMoments) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
  EXPECT_NEAR(a.stddev(), 2.138, 1e-3);
}

TEST(Accumulator, EmptyIsSafe) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(Accumulator, ResetClears) {
  Accumulator a;
  a.add(10.0);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
}

TEST(Histogram, BucketsByPowerOfTwo) {
  Histogram h;
  h.add(0);   // bucket 0
  h.add(1);   // bucket 1
  h.add(2);   // bucket 2
  h.add(3);   // bucket 2
  h.add(4);   // bucket 3
  h.add(255); // bucket 8
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.bucket_count(8), 1u);
  EXPECT_EQ(h.bucket_count(20), 0u);
}

TEST(StatRegistry, CountersAndAccumulators) {
  StatRegistry r;
  ++r.counter("puts");
  ++r.counter("puts");
  r.accumulator("latency").add(3.0);
  EXPECT_EQ(r.counter_value("puts"), 2u);
  EXPECT_EQ(r.counter_value("absent"), 0u);
  EXPECT_EQ(r.accumulators().at("latency").count(), 1u);
  EXPECT_NE(r.to_string().find("puts = 2"), std::string::npos);
}

TEST(Rng, DeterministicWithSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000000), b.uniform_int(0, 1000000));
  }
}

TEST(Rng, UniformIntInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    auto v = r.uniform_int(5, 10);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 10);
  }
}

}  // namespace
}  // namespace gputn::sim

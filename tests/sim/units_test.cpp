#include "sim/units.hpp"

#include <gtest/gtest.h>

namespace gputn::sim {
namespace {

TEST(Units, IntegralConstructorsAreExact) {
  EXPECT_EQ(ps(7), 7);
  EXPECT_EQ(ns(1), 1'000);
  EXPECT_EQ(us(1), 1'000'000);
  EXPECT_EQ(ms(1), 1'000'000'000);
  EXPECT_EQ(sec(1), 1'000'000'000'000);
}

TEST(Units, FloatingConstructorsRound) {
  EXPECT_EQ(ns(1.5), 1'500);
  EXPECT_EQ(us(1.5), 1'500'000);
  EXPECT_EQ(ns(0.0001), 0);  // sub-picosecond rounds down
  EXPECT_EQ(ns(0.0006), 1);  // ...and up
}

TEST(Units, RoundTripConversions) {
  EXPECT_DOUBLE_EQ(to_ns(ns(123)), 123.0);
  EXPECT_DOUBLE_EQ(to_us(us(41)), 41.0);
  EXPECT_DOUBLE_EQ(to_ms(ms(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_sec(sec(2)), 2.0);
}

TEST(Bandwidth, SerializeMatchesRate) {
  // 100 Gbps = 12.5 bytes/ns = 80 ps/byte.
  auto bw = Bandwidth::gbps(100);
  EXPECT_EQ(bw.serialize(1), 80);
  EXPECT_EQ(bw.serialize(1250), ns(100));
  EXPECT_EQ(bw.serialize(0), 0);
}

TEST(Bandwidth, GibpsAndBytesPerSec) {
  auto a = Bandwidth::gibps(1);
  EXPECT_DOUBLE_EQ(a.bytes_per_second(), 1024.0 * 1024 * 1024);
  auto b = Bandwidth::bytes_per_sec(1e9);
  // 1e9 B/s -> 1 byte per ns.
  EXPECT_EQ(b.serialize(1), 1000);
  EXPECT_FALSE(Bandwidth{}.valid());
  EXPECT_TRUE(a.valid());
}

TEST(Units, FormatTimePicksScale) {
  EXPECT_EQ(format_time(ps(5)), "5ps");
  EXPECT_EQ(format_time(ns(100)), "100.000ns");
  EXPECT_EQ(format_time(us(100)), "100.000us");
  EXPECT_EQ(format_time(ms(100)), "100.000ms");
}

}  // namespace
}  // namespace gputn::sim

#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "../support/json_lite.hpp"
#include "cluster/cluster.hpp"
#include "sim/sync.hpp"

namespace gputn::sim {
namespace {

TEST(Trace, SpansAndInstantsSerialize) {
  TraceRecorder t;
  t.span("lane.a", "work", "cat", us(1), us(3));
  t.instant("lane.b", "tick", "cat", us(2));
  EXPECT_EQ(t.event_count(), 2u);
  std::string json = t.to_json();
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.000"), std::string::npos);
  EXPECT_NE(json.find("lane.a"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);
}

TEST(Trace, EscapesQuotesInNames) {
  TraceRecorder t;
  t.instant("lane", "odd\"name", "cat", 0);
  std::string json = t.to_json();
  EXPECT_NE(json.find("odd\\\"name"), std::string::npos);
}

TEST(Trace, EscapesBackslashesInNames) {
  TraceRecorder t;
  t.instant("lane", "a\\b", "cat", 0);
  std::string json = t.to_json();
  EXPECT_NE(json.find("a\\\\b"), std::string::npos);
  // The raw (unescaped) sequence must not survive: a single backslash
  // followed by 'b' would be the invalid-JSON \b escape at parse time.
  EXPECT_EQ(json.find("\"a\\b\""), std::string::npos);
}

TEST(Trace, EscapesCommonControlCharacters) {
  TraceRecorder t;
  t.instant("lane", "line1\nline2\ttabbed\rcr", "cat", 0);
  std::string json = t.to_json();
  EXPECT_NE(json.find("line1\\nline2\\ttabbed\\rcr"), std::string::npos);
  // No raw control characters may remain inside the emitted strings.
  EXPECT_EQ(json.find("line1\nline2"), std::string::npos);
}

TEST(Trace, EscapesRareControlCharactersAsUnicode) {
  TraceRecorder t;
  std::string name = "x";
  name.push_back('\x01');
  name.push_back('\x1f');
  name += "y";
  t.instant("lane", name, "cat", 0);
  std::string json = t.to_json();
  EXPECT_NE(json.find("x\\u0001\\u001fy"), std::string::npos);
}

TEST(Trace, EscapesCategoryAndLaneNames) {
  TraceRecorder t;
  t.span("lane\"q", "name", "cat\\c", 0, ns(5));
  std::string json = t.to_json();
  EXPECT_NE(json.find("lane\\\"q"), std::string::npos);
  EXPECT_NE(json.find("cat\\\\c"), std::string::npos);
}

TEST(Trace, LanesGetStableIds) {
  TraceRecorder t;
  t.instant("x", "a", "c", 0);
  t.instant("y", "b", "c", 0);
  t.instant("x", "c", "c", 0);
  std::string json = t.to_json();
  // Two thread_name metadata records.
  std::size_t first = json.find("thread_name");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(json.find("thread_name", first + 1), std::string::npos);
}

TEST(Trace, ClusterIntegrationCapturesGpuNicTrigger) {
  Simulator sim;
  cluster::SystemConfig cfg = cluster::SystemConfig::table2();
  cfg.dram_bytes = 4u << 20;
  cluster::Cluster cluster(sim, cfg, 2);
  TraceRecorder trace;
  cluster.enable_tracing(trace);

  auto& a = cluster.node(0);
  auto& b = cluster.node(1);
  mem::Addr src = a.memory().alloc(64);
  mem::Addr dst = b.memory().alloc(64);
  mem::Addr flag = b.rt().alloc_flag();
  sim.spawn(
      [](cluster::Node& n, mem::Addr s, mem::Addr d, mem::Addr f)
          -> Task<> {
        nic::PutDesc put;
        put.target = 1;
        put.local_addr = s;
        put.bytes = 64;
        put.remote_addr = d;
        put.remote_flag = f;
        co_await n.rt().trig_put(1, 1, put);
        mem::Addr trig = n.rt().trigger_addr();
        gpu::KernelDesc k;
        k.num_wgs = 1;
        k.fn = [trig](gpu::WorkGroupCtx& ctx) -> Task<> {
          co_await ctx.fence_system();
          co_await ctx.store_system(trig, 1);
        };
        co_await n.rt().launch_sync(std::move(k));
      }(a, src, dst, flag),
      "host");
  sim.run();

  std::string json = trace.to_json();
  EXPECT_NE(json.find("node0.gpu"), std::string::npos);
  EXPECT_NE(json.find("node0.nic"), std::string::npos);
  EXPECT_NE(json.find("node0.trig"), std::string::npos);
  EXPECT_NE(json.find("node1.nic"), std::string::npos);
  EXPECT_NE(json.find(":launch"), std::string::npos);
  EXPECT_NE(json.find("tx:put"), std::string::npos);
  EXPECT_NE(json.find("FIRE"), std::string::npos);
  EXPECT_GT(trace.event_count(), 5u);
}

TEST(Trace, FlowEventsShareIdAndParse) {
  TraceRecorder t;
  t.span("gpu", "kernel", "gpu", us(1), us(2));
  t.span("nic", "deposit", "nic", us(3), us(4));
  t.flow_begin("gpu", "msg", "flow", us(1), 42);
  t.flow_step("nic", "msg", "flow", us(3), 42);
  t.flow_end("nic", "msg", "flow", us(3), 42);
  std::string json = t.to_json();

  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  // The terminating flow event binds to the enclosing slice.
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);

  auto parsed = test::json::parse(json);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_array());
  int flow_events = 0;
  for (const auto& e : *parsed->array) {
    std::string ph = e.at("ph").string;
    if (ph != "s" && ph != "t" && ph != "f") continue;
    ++flow_events;
    EXPECT_DOUBLE_EQ(e.at("id").number, 42.0);
    EXPECT_EQ(e.at("name").string, "msg");
  }
  EXPECT_EQ(flow_events, 3);
}

TEST(Trace, ArgsPassThroughAsJsonObject) {
  TraceRecorder t;
  t.span("lane", "msg", "net", 0, ns(10), "{\"flow\":7,\"bytes\":64}");
  auto parsed = test::json::parse(t.to_json());
  ASSERT_TRUE(parsed.has_value());
  bool found = false;
  for (const auto& e : *parsed->array) {
    if (!e.has("args") || !e.at("args").has("flow")) continue;
    found = true;
    EXPECT_DOUBLE_EQ(e.at("args").at("flow").number, 7.0);
    EXPECT_DOUBLE_EQ(e.at("args").at("bytes").number, 64.0);
  }
  EXPECT_TRUE(found);
}

TEST(Trace, LongNamesAreNotTruncated) {
  // The old serializer rendered each event through a fixed 512-byte
  // snprintf buffer; a longer name silently produced invalid JSON.
  TraceRecorder t;
  std::string name(2000, 'a');
  name += "END";
  t.span("lane", name, "cat", 0, ns(5));
  std::string json = t.to_json();
  EXPECT_NE(json.find(name), std::string::npos);
  auto parsed = test::json::parse(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->array->back().at("name").string, name);
}

TEST(Trace, StreamingWriterMatchesToJson) {
  TraceRecorder t;
  t.span("lane", "s", "c", us(1), us(2));
  t.instant("lane", "i", "c", us(3));
  t.flow_begin("lane", "m", "f", us(1), 9);
  std::ostringstream os;
  t.write_json(os);
  EXPECT_EQ(os.str(), t.to_json());
}

TEST(Trace, EmptyRecorderIsValidJson) {
  TraceRecorder t;
  auto parsed = test::json::parse(t.to_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->is_array());
  EXPECT_TRUE(parsed->array->empty());
}

TEST(Trace, WriteJsonCreatesFile) {
  TraceRecorder t;
  t.span("lane", "s", "c", 0, ns(10));
  std::string path = ::testing::TempDir() + "/gputn_trace_test.json";
  ASSERT_TRUE(t.write_json(path));
  FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char head[2] = {0, 0};
  ASSERT_EQ(std::fread(head, 1, 1, f), 1u);
  std::fclose(f);
  EXPECT_EQ(head[0], '[');
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gputn::sim

// Targeted tests for the calendar-queue event engine: the tiers and
// transitions that the black-box Simulator tests exercise only by accident.
//
// The engine's structure (see sim/simulator.hpp) is a now-FIFO, a bucketed
// wheel over a ~0.52 us horizon, and a far-future overflow heap. These tests
// pin the semantic contract at the seams: FIFO order at equal timestamps no
// matter which tier an event travelled through, promotion out of the
// overflow tier, run_until boundary behavior, and — as a catch-all — a
// randomized schedule checked event-for-event against a trivially correct
// reference model.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/units.hpp"

namespace gputn::sim {
namespace {

// Far enough apart that consecutive events always live in the overflow tier
// (the wheel horizon is well under a millisecond).
constexpr Tick kFarApart = ms(1);

TEST(EventQueue, EqualTimestampFifoAcrossTiers) {
  // Three events at the same timestamp, scheduled by three different routes:
  // directly into the wheel, through the overflow tier (scheduled while the
  // timestamp was beyond the horizon, promoted later), and from a running
  // event at now() (the FIFO). Sequence order must survive all three.
  Simulator sim;
  std::vector<int> order;
  const Tick t = kFarApart + ns(100);

  sim.schedule_at(t, [&] {  // seq 0: overflow at schedule time, promoted
    order.push_back(0);
    sim.schedule_at(t, [&] { order.push_back(3); });  // FIFO while running
  });
  // Drag the cursor close enough that t is inside the horizon, then add
  // wheel-direct events at the same timestamp.
  sim.schedule_at(kFarApart, [&] {
    sim.schedule_at(t, [&] { order.push_back(1); });  // seq: after promotionee
    sim.schedule_at(t, [&] { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sim.now(), t);
}

TEST(EventQueue, FarFutureEventsPromoteInOrder) {
  // A sparse schedule spanning many horizons: every event starts in the
  // overflow tier and must be promoted exactly once, in time order.
  Simulator sim;
  std::vector<int> order;
  for (int i = 9; i >= 0; --i) {
    sim.schedule_at(kFarApart * (i + 1), [&order, i] { order.push_back(i); });
  }
  std::uint64_t executed = sim.run();
  EXPECT_EQ(executed, 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(sim.now(), kFarApart * 10);
}

TEST(EventQueue, PromotionPreservesSeqAgainstLaterWheelInserts) {
  // An overflow event and a wheel-direct event at the same far timestamp:
  // the overflow one was scheduled first, so it must run first even though
  // it reaches the bucket second (promotion happens after the direct
  // insert's bucket already exists).
  Simulator sim;
  std::vector<int> order;
  const Tick t = 2 * kFarApart;
  sim.schedule_at(t, [&] { order.push_back(0); });           // overflow now
  sim.schedule_at(t - us(400), [&] {                         // inside horizon
    sim.schedule_at(t, [&] { order.push_back(1); });         // wheel-direct
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(EventQueue, RunUntilBoundaryIsInclusive) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(ns(10), [&] { order.push_back(1); });
  sim.schedule_at(ns(20), [&] { order.push_back(2); });  // exactly at limit
  sim.schedule_at(ns(20) + 1, [&] { order.push_back(3); });

  std::uint64_t executed = sim.run_until(ns(20));
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  // The clock parks exactly at the limit even though a later event is
  // pending one picosecond after it.
  EXPECT_EQ(sim.now(), ns(20));

  executed = sim.run();
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, RunUntilAdvancesClockPastIdleGaps) {
  // No events at all: the clock still advances to the limit, and scheduling
  // relative to now() afterwards starts from there — including limits far
  // enough out that the wheel cursor must jump across the overflow tier.
  Simulator sim;
  EXPECT_EQ(sim.run_until(kFarApart * 3), 0u);
  EXPECT_EQ(sim.now(), kFarApart * 3);
  std::vector<int> order;
  sim.schedule_in(ns(1), [&] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(sim.now(), kFarApart * 3 + ns(1));
}

TEST(EventQueue, ScheduleEarlierThanParkedPendingEvent) {
  // Regression: run_until stopping short of a pending future event must not
  // park the wheel cursor at that event's block. An event scheduled
  // afterwards at an earlier time (legal — run_until only advanced now() to
  // the limit) would land in a bucket behind the cursor, execute a wheel
  // lap late, and drag now() backwards.
  Simulator sim;
  std::vector<std::pair<int, Tick>> order;
  sim.schedule_at(ns(300), [&] { order.emplace_back(1, sim.now()); });
  EXPECT_EQ(sim.run_until(ns(1)), 0u);
  EXPECT_EQ(sim.now(), ns(1));
  sim.schedule_at(ns(2), [&] { order.emplace_back(2, sim.now()); });
  EXPECT_EQ(sim.run(), 2u);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], (std::pair<int, Tick>{2, ns(2)}));
  EXPECT_EQ(order[1], (std::pair<int, Tick>{1, ns(300)}));
  EXPECT_EQ(sim.now(), ns(300));
}

TEST(EventQueue, ScheduleEarlierThanParkedOverflowEvent) {
  // Same regression through the overflow tier: the pending event is beyond
  // the wheel horizon, so a blocked advance would have jumped the cursor to
  // the overflow block instead of a wheel block.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(kFarApart * 2, [&] { order.push_back(1); });
  EXPECT_EQ(sim.run_until(ns(1)), 0u);
  EXPECT_EQ(sim.now(), ns(1));
  sim.schedule_at(ns(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
  EXPECT_EQ(sim.now(), kFarApart * 2);
}

TEST(EventQueue, RepeatedRunUntilBeforePendingEventKeepsOrder) {
  // Several run_until stops short of the same pending event, each followed
  // by a new earlier schedule: order must stay (when, seq) and the clock
  // must never move backwards.
  Simulator sim;
  std::vector<int> order;
  Tick last_now = 0;
  auto fire = [&](int id) {
    EXPECT_GE(sim.now(), last_now);
    last_now = sim.now();
    order.push_back(id);
  };
  sim.schedule_at(us(400), [&] { fire(99); });  // wheel, far block
  sim.schedule_at(kFarApart, [&] { fire(100); });  // overflow tier
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(sim.run_until(ns(10) * (i + 1)), static_cast<std::uint64_t>(i != 0));
    sim.schedule_at(ns(10) * (i + 1) + ns(5), [&, i] { fire(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 99, 100}));
  EXPECT_EQ(sim.now(), kFarApart);
}

TEST(EventQueue, RunUntilStopsBetweenEqualTimestampBatches) {
  // Events at the limit run; the batch extraction must not leak events
  // scheduled (at the same instant) by code running at the limit: those are
  // current-time events of a *later* call.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(ns(5), [&] {
    order.push_back(1);
    sim.schedule_in(0, [&] { order.push_back(2); });
  });
  EXPECT_EQ(sim.run_until(ns(5)), 2u);  // both run: same timestamp
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// Reference model: the engine contract in its simplest possible form — a
// stable sort of (when, seq). Deliberately has none of the engine's
// structure (no wheel, no tiers), so structural bugs cannot cancel out.
class ReferenceQueue {
 public:
  void schedule(Tick when, int id) { items_.push_back({when, seq_++, id}); }
  std::vector<int> drain() {
    std::stable_sort(items_.begin(), items_.end(),
                     [](const Rec& a, const Rec& b) {
                       return a.when != b.when ? a.when < b.when
                                               : a.seq < b.seq;
                     });
    std::vector<int> order;
    order.reserve(items_.size());
    for (const Rec& r : items_) order.push_back(r.id);
    return order;
  }

 private:
  struct Rec {
    Tick when;
    std::uint64_t seq;
    int id;
  };
  std::vector<Rec> items_;
  std::uint64_t seq_ = 0;
};

// Deterministic pseudo-random stream (splitmix64): fixed seed, so this test
// is a golden test — the same schedule every run, on every platform.
struct SplitMix {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
};

std::vector<int> run_randomized(std::uint64_t seed) {
  // A delay mix chosen to hit every tier: zero-delay (FIFO), clustered
  // short delays (wheel, with frequent equal timestamps thanks to the
  // coarse quantization), and occasional far jumps (overflow + promotion).
  Simulator sim;
  ReferenceQueue ref;
  std::vector<int> order;
  SplitMix rng{seed};
  int next_id = 0;

  constexpr int kInitial = 64;
  constexpr int kTotal = 5000;
  struct Driver {
    Simulator* sim;
    ReferenceQueue* ref;
    std::vector<int>* order;
    SplitMix* rng;
    int* next_id;
    void fire(int id) const {
      order->push_back(id);
      if (*next_id >= kTotal) return;
      // Each executed event reschedules up to two successors, so the live
      // set grows and shrinks and equal timestamps occur naturally.
      int n = 1 + static_cast<int>(rng->next() % 2);
      for (int i = 0; i < n && *next_id < kTotal; ++i) {
        Tick d;
        switch (rng->next() % 8) {
          case 0: d = 0; break;                                  // FIFO
          case 1: d = static_cast<Tick>(rng->next() % 128); break;
          case 7: d = us(1) + static_cast<Tick>(rng->next() % ns(100));
                  break;                                         // overflow
          default: d = static_cast<Tick>(rng->next() % ns(100)); break;
        }
        int id2 = (*next_id)++;
        Driver self = *this;
        sim->schedule_in(d, [self, id2] { self.fire(id2); });
        ref->schedule(sim->now() + d, id2);
      }
    }
  };
  Driver drv{&sim, &ref, &order, &rng, &next_id};
  for (int i = 0; i < kInitial; ++i) {
    Tick at = static_cast<Tick>(rng.next() % ns(50));
    int id = next_id++;
    sim.schedule_at(at, [drv, id] { drv.fire(id); });
    ref.schedule(at, id);
  }
  sim.run();
  EXPECT_EQ(order.size(), static_cast<std::size_t>(kTotal));
  // The reference model cannot replay mid-run scheduling, but it recorded
  // every (when, seq) as the run produced it — its stable sort is the
  // ground-truth execution order.
  EXPECT_EQ(order, ref.drain());
  return order;
}

TEST(EventQueue, RandomizedScheduleMatchesReferenceModel) {
  run_randomized(0x5eedull);
  run_randomized(0xfeedfaceull);
}

TEST(EventQueue, RandomizedScheduleIsDeterministic) {
  // Same seed, two fresh simulators: identical execution order. This is the
  // engine-level guarantee behind the workload-level Deterministic tests.
  std::vector<int> a = run_randomized(42);
  std::vector<int> b = run_randomized(42);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace gputn::sim

#include "sim/sync.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"
#include "sim/units.hpp"

namespace gputn::sim {
namespace {

TEST(Event, LatchesAndReleasesAllWaiters) {
  Simulator sim;
  Event ev(sim);
  std::vector<Tick> woke;
  for (int i = 0; i < 3; ++i) {
    sim.spawn(
        [](Simulator& s, Event& e, std::vector<Tick>& out) -> Task<> {
          co_await e.wait();
          out.push_back(s.now());
        }(sim, ev, woke),
        "waiter");
  }
  sim.schedule_at(us(2), [&] { ev.trigger(); });
  sim.run();
  ASSERT_EQ(woke.size(), 3u);
  for (Tick t : woke) EXPECT_EQ(t, us(2));
}

TEST(Event, WaitAfterTriggerCompletesImmediately) {
  Simulator sim;
  Event ev(sim);
  ev.trigger();
  Tick woke = -1;
  sim.spawn(
      [](Simulator& s, Event& e, Tick& out) -> Task<> {
        co_await s.delay(us(1));
        co_await e.wait();  // already triggered: no extra delay
        out = s.now();
      }(sim, ev, woke),
      "late");
  sim.run();
  EXPECT_EQ(woke, us(1));
}

TEST(Event, DoubleTriggerIsIdempotent) {
  Simulator sim;
  Event ev(sim);
  int wakes = 0;
  sim.spawn(
      [](Event& e, int& out) -> Task<> {
        co_await e.wait();
        ++out;
      }(ev, wakes),
      "w");
  ev.trigger();
  ev.trigger();
  sim.run();
  EXPECT_EQ(wakes, 1);
}

TEST(Condition, WaitUntilReevaluatesPredicate) {
  Simulator sim;
  Condition cond(sim);
  int value = 0;
  Tick done_at = -1;
  sim.spawn(
      [](Simulator& s, Condition& c, int& v, Tick& out) -> Task<> {
        co_await c.wait_until([&v] { return v >= 3; });
        out = s.now();
      }(sim, cond, value, done_at),
      "waiter");
  for (int i = 1; i <= 3; ++i) {
    sim.schedule_at(us(i), [&value, &cond, i] {
      value = i;
      cond.notify_all();
    });
  }
  sim.run();
  EXPECT_EQ(done_at, us(3));
}

TEST(Channel, FifoOrderAcrossSuspensions) {
  Simulator sim;
  Channel<int> ch(sim);
  std::vector<int> got;
  sim.spawn(
      [](Channel<int>& c, std::vector<int>& out) -> Task<> {
        for (int i = 0; i < 5; ++i) out.push_back(co_await c.pop());
      }(ch, got),
      "consumer");
  sim.spawn(
      [](Simulator& s, Channel<int>& c) -> Task<> {
        for (int i = 0; i < 5; ++i) {
          c.push(i);
          co_await s.delay(ns(10));
        }
      }(sim, ch),
      "producer");
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Channel, TryPopDoesNotSuspend) {
  Simulator sim;
  Channel<int> ch(sim);
  EXPECT_FALSE(ch.try_pop().has_value());
  ch.push(7);
  auto v = ch.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
  EXPECT_TRUE(ch.empty());
}

TEST(Channel, MultipleConsumersEachGetOneItem) {
  Simulator sim;
  Channel<int> ch(sim);
  std::vector<int> got;
  for (int i = 0; i < 3; ++i) {
    sim.spawn(
        [](Channel<int>& c, std::vector<int>& out) -> Task<> {
          out.push_back(co_await c.pop());
        }(ch, got),
        "c");
  }
  sim.schedule_at(us(1), [&] {
    ch.push(10);
    ch.push(20);
    ch.push(30);
  });
  sim.run();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0] + got[1] + got[2], 60);
}

TEST(Semaphore, LimitsConcurrency) {
  Simulator sim;
  Semaphore sem(sim, 2);
  int concurrent = 0;
  int max_concurrent = 0;
  for (int i = 0; i < 6; ++i) {
    sim.spawn(
        [](Simulator& s, Semaphore& se, int& cur, int& mx) -> Task<> {
          co_await se.acquire();
          ++cur;
          mx = std::max(mx, cur);
          co_await s.delay(us(1));
          --cur;
          se.release();
        }(sim, sem, concurrent, max_concurrent),
        "worker");
  }
  sim.run();
  EXPECT_EQ(max_concurrent, 2);
  EXPECT_EQ(sim.now(), us(3));  // 6 workers, 2 wide, 1 us each
  EXPECT_EQ(sem.available(), 2);
}

TEST(Semaphore, GuardReleasesOnScopeExit) {
  Simulator sim;
  Semaphore sem(sim, 1);
  sim.spawn(
      [](Simulator& s, Semaphore& se) -> Task<> {
        {
          auto guard = co_await SemaphoreGuard::lock(se);
          co_await s.delay(us(1));
        }
        co_return;
      }(sim, sem),
      "guarded");
  sim.run();
  EXPECT_EQ(sem.available(), 1);
}

TEST(Barrier, ReleasesAllAtLastArrival) {
  Simulator sim;
  Barrier bar(sim, 3);
  std::vector<Tick> woke;
  for (int i = 0; i < 3; ++i) {
    sim.spawn(
        [](Simulator& s, Barrier& b, int delay_us,
           std::vector<Tick>& out) -> Task<> {
          co_await s.delay(us(delay_us));
          co_await b.arrive_and_wait();
          out.push_back(s.now());
        }(sim, bar, i + 1, woke),
        "party");
  }
  sim.run();
  ASSERT_EQ(woke.size(), 3u);
  for (Tick t : woke) EXPECT_EQ(t, us(3));
}

TEST(Barrier, IsReusableAcrossRounds) {
  Simulator sim;
  Barrier bar(sim, 2);
  std::vector<Tick> times;
  for (int i = 0; i < 2; ++i) {
    sim.spawn(
        [](Simulator& s, Barrier& b, int id, std::vector<Tick>& out)
            -> Task<> {
          for (int round = 0; round < 3; ++round) {
            co_await s.delay(us(id + 1));
            co_await b.arrive_and_wait();
            if (id == 0) out.push_back(s.now());
          }
        }(sim, bar, i, times),
        "party");
  }
  sim.run();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_EQ(times[0], us(2));
  EXPECT_EQ(times[1], us(4));
  EXPECT_EQ(times[2], us(6));
}

TEST(JoinAll, WaitsForEveryHandle) {
  Simulator sim;
  std::vector<ProcessHandle> handles;
  for (int i = 1; i <= 4; ++i) {
    handles.push_back(sim.spawn(
        [](Simulator& s, int d) -> Task<> { co_await s.delay(us(d)); }(sim, i),
        "w"));
  }
  Tick done = -1;
  sim.spawn(
      [](Simulator& s, std::vector<ProcessHandle> hs, Tick& out) -> Task<> {
        co_await join_all(std::move(hs));
        out = s.now();
      }(sim, handles, done),
      "joiner");
  sim.run();
  EXPECT_EQ(done, us(4));
}

}  // namespace
}  // namespace gputn::sim

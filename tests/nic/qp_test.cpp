// Doorbell-batching Qp and token-bucket rate limiter.
#include "nic/qp.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/fabric.hpp"
#include "nic/token_bucket.hpp"
#include "sim/simulator.hpp"
#include "sim/units.hpp"

namespace gputn::nic {
namespace {

struct TwoNodes {
  explicit TwoNodes(NicConfig cfg = {}) : TwoNodes(cfg, cfg) {}
  TwoNodes(const NicConfig& cfg0, const NicConfig& cfg1) {
    const NicConfig* cfgs[2] = {&cfg0, &cfg1};
    for (int i = 0; i < 2; ++i) {
      mems.push_back(std::make_unique<mem::Memory>(1 << 22));
      nics.push_back(std::make_unique<Nic>(sim, *mems.back(), fabric, *cfgs[i]));
    }
  }
  ~TwoNodes() { sim.reap_processes(); }

  mem::Memory& mem(int i) { return *mems[i]; }
  Nic& nic(int i) { return *nics[i]; }

  mem::Addr flag(int node) {
    mem::Addr f = mem(node).alloc(8);
    mem(node).store<std::uint64_t>(f, 0);
    return f;
  }

  sim::Simulator sim;
  net::Fabric fabric{sim, net::FabricConfig{}};
  std::vector<std::unique_ptr<mem::Memory>> mems;
  std::vector<std::unique_ptr<Nic>> nics;
};

PutDesc small_put(TwoNodes&, mem::Addr src, mem::Addr dst, mem::Addr rflag,
                  std::uint64_t flag_value) {
  PutDesc p;
  p.target = 1;
  p.local_addr = src;
  p.bytes = 64;
  p.remote_addr = dst;
  p.remote_flag = rflag;
  p.flag_value = flag_value;
  return p;
}

TEST(Qp, FullBatchRingsOneDoorbellInPostOrder) {
  TwoNodes t;
  mem::Addr src = t.mem(0).alloc(512);
  mem::Addr dst = t.mem(1).alloc(512);
  std::vector<mem::Addr> rflags;
  for (int i = 0; i < 4; ++i) rflags.push_back(t.flag(1));

  QpConfig qc;
  qc.batch_size = 4;
  qc.flush_timeout = sim::us(1);
  Qp qp(t.sim, t.nic(0), qc);
  for (int i = 0; i < 4; ++i) {
    qp.post(small_put(t, src + 64 * i, dst + 64 * i, rflags[i],
                      static_cast<std::uint64_t>(i) + 1));
  }
  EXPECT_EQ(qp.pending(), 0u);  // 4th post filled the batch and flushed
  t.sim.run();

  EXPECT_EQ(qp.posted(), 4u);
  EXPECT_EQ(qp.doorbells(), 1u);
  EXPECT_EQ(qp.batch_flushes(), 1u);
  EXPECT_EQ(qp.timeout_flushes(), 0u);
  EXPECT_EQ(qp.occupancy().max(), 4.0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(t.mem(1).load<std::uint64_t>(rflags[i]),
              static_cast<std::uint64_t>(i) + 1);
  }
}

TEST(Qp, PartialBatchFlushesOnTimeoutInPostOrder) {
  TwoNodes t;
  mem::Addr src = t.mem(0).alloc(256);
  mem::Addr dst = t.mem(1).alloc(256);
  mem::Addr rf0 = t.flag(1);
  mem::Addr rf1 = t.flag(1);

  QpConfig qc;
  qc.batch_size = 4;
  qc.flush_timeout = sim::ns(500);
  Qp qp(t.sim, t.nic(0), qc);

  // Two commands — below batch_size, so only the timer can flush them.
  // The receive order must be post order (FIFO through one doorbell).
  sim::Tick landed0 = -1;
  sim::Tick landed1 = -1;
  t.sim.spawn(
      [](TwoNodes& tt, Qp& q, mem::Addr s, mem::Addr d, mem::Addr f0,
         mem::Addr f1, sim::Tick& l0, sim::Tick& l1) -> sim::Task<> {
        q.post(small_put(tt, s, d, f0, 1));
        q.post(small_put(tt, s + 64, d + 64, f1, 1));
        EXPECT_EQ(q.pending(), 2u);
        while (tt.mem(1).load<std::uint64_t>(f0) == 0) {
          co_await tt.sim.delay(sim::ns(5));
        }
        l0 = tt.sim.now();
        while (tt.mem(1).load<std::uint64_t>(f1) == 0) {
          co_await tt.sim.delay(sim::ns(5));
        }
        l1 = tt.sim.now();
      }(t, qp, src, dst, rf0, rf1, landed0, landed1),
      "driver");
  t.sim.run();

  EXPECT_EQ(qp.doorbells(), 1u);
  EXPECT_EQ(qp.timeout_flushes(), 1u);
  EXPECT_EQ(qp.batch_flushes(), 0u);
  // The flush happened at the timeout, not at post time: nothing can land
  // before flush_timeout + doorbell latency.
  EXPECT_GE(landed0, sim::ns(500));
  EXPECT_GE(landed1, landed0);  // post order preserved
}

TEST(Qp, TimerGenerationSkipsStaleTimeoutAfterBatchFlush) {
  TwoNodes t;
  mem::Addr src = t.mem(0).alloc(512);
  mem::Addr dst = t.mem(1).alloc(512);
  std::vector<mem::Addr> rflags;
  for (int i = 0; i < 6; ++i) rflags.push_back(t.flag(1));

  QpConfig qc;
  qc.batch_size = 2;
  qc.flush_timeout = sim::ns(300);
  Qp qp(t.sim, t.nic(0), qc);
  // Three full batches flush on size; their armed timers must all be stale
  // no-ops (no extra doorbells, no timeout flushes).
  for (int i = 0; i < 6; ++i) {
    qp.post(small_put(t, src + 64 * i, dst + 64 * i, rflags[i], 1));
  }
  t.sim.run();
  EXPECT_EQ(qp.doorbells(), 3u);
  EXPECT_EQ(qp.batch_flushes(), 3u);
  EXPECT_EQ(qp.timeout_flushes(), 0u);
}

TEST(TokenBucket, BurstPassesThenConformsToRate) {
  sim::Simulator sim;
  TokenBucketConfig cfg;
  cfg.ops_per_sec = 1e6;  // 1 op per us
  cfg.burst = 4;
  TokenBucket tb(sim, cfg);
  ASSERT_TRUE(tb.enabled());
  EXPECT_EQ(tb.period(), sim::us(1));

  // N back-to-back acquires: the first `burst` pass immediately, the rest
  // pace out at one per period — total time >= (N - burst) * period.
  constexpr int kOps = 12;
  sim::Tick done = -1;
  sim.spawn(
      [](sim::Simulator& s, TokenBucket& b, sim::Tick& out) -> sim::Task<> {
        for (int i = 0; i < kOps; ++i) co_await b.acquire();
        out = s.now();
      }(sim, tb, done),
      "burst");
  sim.run();

  ASSERT_GE(done, 0);
  EXPECT_GE(done, (kOps - cfg.burst) * sim::us(1));
  // Conformance upper bound: no over-throttling beyond one extra period.
  EXPECT_LE(done, (kOps - cfg.burst + 1) * sim::us(1));
  EXPECT_EQ(tb.admitted(), static_cast<std::uint64_t>(kOps));
  EXPECT_EQ(tb.stalls(), static_cast<std::uint64_t>(kOps - cfg.burst));
  EXPECT_GT(tb.stalled_time(), 0);
}

TEST(TokenBucket, IdleRefillsOnlyUpToBurst) {
  sim::Simulator sim;
  TokenBucketConfig cfg;
  cfg.ops_per_sec = 1e6;
  cfg.burst = 2;
  TokenBucket tb(sim, cfg);

  sim::Tick second_burst_elapsed = -1;
  sim.spawn(
      [](sim::Simulator& s, TokenBucket& b, sim::Tick& out) -> sim::Task<> {
        co_await b.acquire();
        co_await b.acquire();  // bucket drained
        co_await s.delay(sim::ms(1));  // long idle: refills clamp at burst
        sim::Tick t0 = s.now();
        for (int i = 0; i < 4; ++i) co_await b.acquire();
        out = s.now() - t0;
      }(sim, tb, second_burst_elapsed),
      "idle");
  sim.run();

  // Only `burst` tokens accumulated during the idle gap, so 4 acquires
  // need 2 refill periods — a leaky-bucket would have banked all 1000.
  EXPECT_GE(second_burst_elapsed, 2 * sim::us(1));
}

TEST(TokenBucket, NicRateLimitPacesCommandPipeline) {
  NicConfig cfg;
  cfg.rate_limit.ops_per_sec = 2e6;  // 500 ns per op
  cfg.rate_limit.burst = 1;
  TwoNodes t(cfg, NicConfig{});  // only the initiator NIC is rate-limited
  mem::Addr src = t.mem(0).alloc(512);
  mem::Addr dst = t.mem(1).alloc(512);
  mem::Addr last_flag = t.flag(1);
  for (int i = 0; i < 8; ++i) {
    PutDesc p = small_put(t, src + 64 * i, dst + 64 * i,
                          i == 7 ? last_flag : 0, 1);
    t.nic(0).ring_doorbell(p);
  }
  t.sim.run();
  EXPECT_EQ(t.mem(1).load<std::uint64_t>(last_flag), 1u);
  // 8 ops through a 1-deep bucket at 500 ns: >= 7 stall periods on the
  // initiator's TX pipeline.
  EXPECT_GE(t.sim.now(), 7 * sim::ns(500));
  EXPECT_EQ(t.nic(0).stats().counter_value("nic.tb.admitted"), 8u);
  EXPECT_GE(t.nic(0).stats().counter_value("nic.tb.stalls"), 7u);
  // The un-limited peer NIC publishes no token-bucket counters at all.
  EXPECT_EQ(t.nic(1).rate_limiter(), nullptr);
  EXPECT_EQ(t.nic(1).stats().counter_value("nic.tb.admitted"), 0u);
}

}  // namespace
}  // namespace gputn::nic

// Eager/rendezvous protocol selection and completion queues.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/fabric.hpp"
#include "nic/nic.hpp"
#include "sim/simulator.hpp"

namespace gputn::nic {
namespace {

struct TwoNodes {
  explicit TwoNodes(NicConfig cfg = NicConfig{}) {
    for (int i = 0; i < 2; ++i) {
      mems.push_back(std::make_unique<mem::Memory>(8 << 20));
      nics.push_back(std::make_unique<Nic>(sim, *mems.back(), fabric, cfg));
    }
  }
  ~TwoNodes() { sim.reap_processes(); }

  mem::Memory& mem(int i) { return *mems[i]; }
  Nic& nic(int i) { return *nics[i]; }
  mem::Addr flag(int node) {
    mem::Addr f = mem(node).alloc(8);
    mem(node).store<std::uint64_t>(f, 0);
    return f;
  }

  sim::Simulator sim;
  net::Fabric fabric{sim, net::FabricConfig{}};
  std::vector<std::unique_ptr<mem::Memory>> mems;
  std::vector<std::unique_ptr<Nic>> nics;
};

void fill(mem::Memory& m, mem::Addr a, std::size_t n, std::uint64_t seed) {
  for (std::size_t i = 0; i < n / 8; ++i) {
    m.store<std::uint64_t>(a + i * 8, seed + i);
  }
}

bool check(mem::Memory& m, mem::Addr a, std::size_t n, std::uint64_t seed) {
  for (std::size_t i = 0; i < n / 8; ++i) {
    if (m.load<std::uint64_t>(a + i * 8) != seed + i) return false;
  }
  return true;
}

TEST(Rendezvous, LargeSendUsesRtsPullData) {
  NicConfig cfg;
  cfg.eager_threshold = 1024;
  TwoNodes t(cfg);
  const std::size_t kBytes = 64 * 1024;
  mem::Addr src = t.mem(0).alloc(kBytes);
  mem::Addr dst = t.mem(1).alloc(kBytes);
  fill(t.mem(0), src, kBytes, 42);
  mem::Addr lflag = t.flag(0);
  mem::Addr rflag = t.flag(1);

  t.nic(1).post_recv(RecvDesc{0, 9, dst, kBytes, rflag, 1, 0});
  t.nic(0).ring_doorbell(SendDesc{1, src, kBytes, 9, lflag, 1, 0});
  t.sim.run();

  EXPECT_EQ(t.mem(1).load<std::uint64_t>(rflag), 1u);
  EXPECT_EQ(t.mem(0).load<std::uint64_t>(lflag), 1u);
  EXPECT_TRUE(check(t.mem(1), dst, kBytes, 42));
  EXPECT_EQ(t.nic(0).stats().counter_value("rendezvous_sends"), 1u);
  EXPECT_EQ(t.nic(1).stats().counter_value("rts_received"), 1u);
  EXPECT_EQ(t.nic(1).stats().counter_value("rendezvous_pulls"), 1u);
  EXPECT_EQ(t.nic(0).stats().counter_value("rndv_pulls_received"), 1u);
}

TEST(Rendezvous, RtsBeforeRecvParksUntilMatched) {
  NicConfig cfg;
  cfg.eager_threshold = 512;
  TwoNodes t(cfg);
  const std::size_t kBytes = 4096;
  mem::Addr src = t.mem(0).alloc(kBytes);
  mem::Addr dst = t.mem(1).alloc(kBytes);
  fill(t.mem(0), src, kBytes, 7);
  mem::Addr rflag = t.flag(1);

  t.nic(0).ring_doorbell(SendDesc{1, src, kBytes, 3, 0, 1, 0});
  t.sim.run();
  EXPECT_EQ(t.mem(1).load<std::uint64_t>(rflag), 0u);
  // No large unexpected payload was buffered — only the RTS descriptor.
  EXPECT_EQ(t.nic(1).unexpected_msgs(), 0);

  t.nic(1).post_recv(RecvDesc{0, 3, dst, kBytes, rflag, 1, 0});
  t.sim.run();
  EXPECT_EQ(t.mem(1).load<std::uint64_t>(rflag), 1u);
  EXPECT_TRUE(check(t.mem(1), dst, kBytes, 7));
}

TEST(Rendezvous, SmallSendsStayEager) {
  NicConfig cfg;
  cfg.eager_threshold = 4096;
  TwoNodes t(cfg);
  mem::Addr src = t.mem(0).alloc(1024);
  mem::Addr dst = t.mem(1).alloc(1024);
  mem::Addr rflag = t.flag(1);
  t.nic(1).post_recv(RecvDesc{0, 1, dst, 1024, rflag, 1, 0});
  t.nic(0).ring_doorbell(SendDesc{1, src, 1024, 1, 0, 1, 0});
  t.sim.run();
  EXPECT_EQ(t.mem(1).load<std::uint64_t>(rflag), 1u);
  EXPECT_EQ(t.nic(0).stats().counter_value("rendezvous_sends"), 0u);
}

TEST(Rendezvous, SenderLocalCompletionAfterPullNotRts) {
  NicConfig cfg;
  cfg.eager_threshold = 512;
  TwoNodes t(cfg);
  const std::size_t kBytes = 8192;
  mem::Addr src = t.mem(0).alloc(kBytes);
  mem::Addr dst = t.mem(1).alloc(kBytes);
  mem::Addr lflag = t.flag(0);

  t.nic(0).ring_doorbell(SendDesc{1, src, kBytes, 5, lflag, 1, 0});
  t.sim.run();
  // Receive not yet posted: the buffer must NOT be marked reusable.
  EXPECT_EQ(t.mem(0).load<std::uint64_t>(lflag), 0u);
  t.nic(1).post_recv(RecvDesc{0, 5, dst, kBytes, 0, 1, 0});
  t.sim.run();
  EXPECT_EQ(t.mem(0).load<std::uint64_t>(lflag), 1u);
}

TEST(Rendezvous, TooSmallRecvBufferFaults) {
  NicConfig cfg;
  cfg.eager_threshold = 512;
  TwoNodes t(cfg);
  mem::Addr src = t.mem(0).alloc(8192);
  mem::Addr dst = t.mem(1).alloc(1024);
  t.nic(0).ring_doorbell(SendDesc{1, src, 8192, 5, 0, 1, 0});
  t.sim.run();
  EXPECT_THROW(t.nic(1).post_recv(RecvDesc{0, 5, dst, 1024, 0, 1, 0}),
               std::runtime_error);
}

TEST(CompletionQueue, EntriesForPutSendRecv) {
  TwoNodes t;
  mem::Addr src = t.mem(0).alloc(256);
  mem::Addr dst = t.mem(1).alloc(256);

  PutDesc put;
  put.target = 1;
  put.local_addr = src;
  put.bytes = 256;
  put.remote_addr = dst;
  put.cq_cookie = 111;
  t.nic(0).ring_doorbell(put);
  t.sim.run();
  auto e = t.nic(0).cq_poll();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->cookie, 111u);
  EXPECT_EQ(e->kind, 1u);
  EXPECT_EQ(e->bytes, 256u);
  EXPECT_FALSE(t.nic(0).cq_poll().has_value()) << "one entry per op";

  t.nic(1).post_recv(RecvDesc{0, 4, dst, 256, 0, 1, /*cq_cookie=*/222});
  t.nic(0).ring_doorbell(SendDesc{1, src, 256, 4, 0, 1, /*cq_cookie=*/333});
  t.sim.run();
  auto send_e = t.nic(0).cq_poll();
  ASSERT_TRUE(send_e.has_value());
  EXPECT_EQ(send_e->cookie, 333u);
  EXPECT_EQ(send_e->kind, 2u);
  auto recv_e = t.nic(1).cq_poll();
  ASSERT_TRUE(recv_e.has_value());
  EXPECT_EQ(recv_e->cookie, 222u);
  EXPECT_EQ(recv_e->kind, 3u);
}

TEST(CompletionQueue, WaitSuspendsUntilCompletion) {
  TwoNodes t;
  mem::Addr src = t.mem(0).alloc(64);
  mem::Addr dst = t.mem(1).alloc(64);
  sim::Tick woke = -1;
  t.sim.spawn(
      [](TwoNodes& tt, sim::Tick& out) -> sim::Task<> {
        CqEntry e = co_await tt.nic(0).cq_wait();
        EXPECT_EQ(e.cookie, 99u);
        out = tt.sim.now();
      }(t, woke),
      "cq-waiter");
  t.sim.schedule_at(sim::us(5), [&] {
    PutDesc put;
    put.target = 1;
    put.local_addr = src;
    put.bytes = 64;
    put.remote_addr = dst;
    put.cq_cookie = 99;
    t.nic(0).ring_doorbell(put);
  });
  t.sim.run();
  EXPECT_GT(woke, sim::us(5));
}

TEST(CompletionQueue, RendezvousSidesBothComplete) {
  NicConfig cfg;
  cfg.eager_threshold = 512;
  TwoNodes t(cfg);
  mem::Addr src = t.mem(0).alloc(8192);
  mem::Addr dst = t.mem(1).alloc(8192);
  t.nic(1).post_recv(RecvDesc{0, 6, dst, 8192, 0, 1, /*cq_cookie=*/42});
  t.nic(0).ring_doorbell(SendDesc{1, src, 8192, 6, 0, 1, /*cq_cookie=*/43});
  t.sim.run();
  auto s = t.nic(0).cq_poll();
  auto r = t.nic(1).cq_poll();
  ASSERT_TRUE(s.has_value());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(s->cookie, 43u);
  EXPECT_EQ(r->cookie, 42u);
  EXPECT_EQ(s->kind, 2u);
  EXPECT_EQ(r->kind, 3u);
}

}  // namespace
}  // namespace gputn::nic

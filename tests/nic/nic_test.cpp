#include "nic/nic.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/fabric.hpp"
#include "sim/simulator.hpp"

namespace gputn::nic {
namespace {

struct TwoNodes {
  TwoNodes() {
    for (int i = 0; i < 2; ++i) {
      mems.push_back(std::make_unique<mem::Memory>(1 << 22));
      nics.push_back(
          std::make_unique<Nic>(sim, *mems.back(), fabric, NicConfig{}));
    }
  }
  ~TwoNodes() { sim.reap_processes(); }

  mem::Memory& mem(int i) { return *mems[i]; }
  Nic& nic(int i) { return *nics[i]; }

  mem::Addr flag(int node) {
    mem::Addr f = mem(node).alloc(8);
    mem(node).store<std::uint64_t>(f, 0);
    return f;
  }

  sim::Simulator sim;
  net::Fabric fabric{sim, net::FabricConfig{}};
  std::vector<std::unique_ptr<mem::Memory>> mems;
  std::vector<std::unique_ptr<Nic>> nics;
};

TEST(Nic, PutDeliversPayloadAndFlags) {
  TwoNodes t;
  mem::Addr src = t.mem(0).alloc(256);
  mem::Addr dst = t.mem(1).alloc(256);
  for (int i = 0; i < 32; ++i) {
    t.mem(0).store<std::uint64_t>(src + 8 * i, 1000 + i);
  }
  mem::Addr lflag = t.flag(0);
  mem::Addr rflag = t.flag(1);

  PutDesc put;
  put.target = 1;
  put.local_addr = src;
  put.bytes = 256;
  put.remote_addr = dst;
  put.local_flag = lflag;
  put.remote_flag = rflag;
  put.flag_value = 7;
  t.nic(0).ring_doorbell(put);
  t.sim.run();

  EXPECT_EQ(t.mem(0).load<std::uint64_t>(lflag), 7u);
  EXPECT_EQ(t.mem(1).load<std::uint64_t>(rflag), 7u);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(t.mem(1).load<std::uint64_t>(dst + 8 * i), 1000u + i);
  }
  EXPECT_EQ(t.nic(0).stats().counter_value("puts"), 1u);
  EXPECT_EQ(t.nic(1).stats().counter_value("puts_received"), 1u);
}

TEST(Nic, LocalCompletionPrecedesRemoteCompletion) {
  TwoNodes t;
  mem::Addr src = t.mem(0).alloc(4096);
  mem::Addr dst = t.mem(1).alloc(4096);
  mem::Addr lflag = t.flag(0);
  mem::Addr rflag = t.flag(1);

  PutDesc put;
  put.target = 1;
  put.local_addr = src;
  put.bytes = 4096;
  put.remote_addr = dst;
  put.local_flag = lflag;
  put.remote_flag = rflag;
  t.nic(0).ring_doorbell(put);

  sim::Tick local_done = -1, remote_done = -1;
  t.sim.spawn(
      [](TwoNodes& tt, mem::Addr lf, mem::Addr rf, sim::Tick& l,
         sim::Tick& r) -> sim::Task<> {
        while (tt.mem(0).load<std::uint64_t>(lf) == 0) {
          co_await tt.sim.delay(sim::ns(5));
        }
        l = tt.sim.now();
        while (tt.mem(1).load<std::uint64_t>(rf) == 0) {
          co_await tt.sim.delay(sim::ns(5));
        }
        r = tt.sim.now();
      }(t, lflag, rflag, local_done, remote_done),
      "observer");
  t.sim.run();
  EXPECT_GT(local_done, 0);
  EXPECT_GT(remote_done, local_done);
}

TEST(Nic, GetFetchesRemoteData) {
  TwoNodes t;
  mem::Addr remote = t.mem(1).alloc(128);
  mem::Addr local = t.mem(0).alloc(128);
  t.mem(1).store<std::uint64_t>(remote, 0xabcdefull);
  t.mem(1).store<std::uint64_t>(remote + 120, 0x123456ull);
  mem::Addr lflag = t.flag(0);

  GetDesc get;
  get.target = 1;
  get.local_addr = local;
  get.bytes = 128;
  get.remote_addr = remote;
  get.local_flag = lflag;
  t.nic(0).ring_doorbell(get);
  t.sim.run();

  EXPECT_EQ(t.mem(0).load<std::uint64_t>(lflag), 1u);
  EXPECT_EQ(t.mem(0).load<std::uint64_t>(local), 0xabcdefull);
  EXPECT_EQ(t.mem(0).load<std::uint64_t>(local + 120), 0x123456ull);
}

TEST(Nic, SendMatchesPostedRecv) {
  TwoNodes t;
  mem::Addr src = t.mem(0).alloc(64);
  mem::Addr dst = t.mem(1).alloc(64);
  t.mem(0).store<std::uint64_t>(src, 42);
  mem::Addr rflag = t.flag(1);

  RecvDesc r;
  r.src = 0;
  r.tag = 5;
  r.local_addr = dst;
  r.max_bytes = 64;
  r.flag = rflag;
  t.nic(1).post_recv(r);

  SendDesc s;
  s.target = 1;
  s.local_addr = src;
  s.bytes = 64;
  s.tag = 5;
  t.nic(0).ring_doorbell(s);
  t.sim.run();

  EXPECT_EQ(t.mem(1).load<std::uint64_t>(rflag), 1u);
  EXPECT_EQ(t.mem(1).load<std::uint64_t>(dst), 42u);
  EXPECT_EQ(t.nic(1).posted_recvs(), 0);
}

TEST(Nic, UnexpectedSendBuffersUntilRecvPosted) {
  TwoNodes t;
  mem::Addr src = t.mem(0).alloc(64);
  mem::Addr dst = t.mem(1).alloc(64);
  t.mem(0).store<std::uint64_t>(src, 77);
  mem::Addr rflag = t.flag(1);

  SendDesc s;
  s.target = 1;
  s.local_addr = src;
  s.bytes = 64;
  s.tag = 9;
  t.nic(0).ring_doorbell(s);
  t.sim.run();
  EXPECT_EQ(t.nic(1).unexpected_msgs(), 1);
  EXPECT_EQ(t.mem(1).load<std::uint64_t>(rflag), 0u);

  RecvDesc r;
  r.src = kAnySource;
  r.tag = 9;
  r.local_addr = dst;
  r.max_bytes = 64;
  r.flag = rflag;
  t.nic(1).post_recv(r);
  t.sim.run();
  EXPECT_EQ(t.mem(1).load<std::uint64_t>(rflag), 1u);
  EXPECT_EQ(t.mem(1).load<std::uint64_t>(dst), 77u);
  EXPECT_EQ(t.nic(1).unexpected_msgs(), 0);
}

TEST(Nic, TagsDisambiguateRecvs) {
  TwoNodes t;
  mem::Addr src1 = t.mem(0).alloc(8);
  mem::Addr src2 = t.mem(0).alloc(8);
  t.mem(0).store<std::uint64_t>(src1, 111);
  t.mem(0).store<std::uint64_t>(src2, 222);
  mem::Addr dst1 = t.mem(1).alloc(8);
  mem::Addr dst2 = t.mem(1).alloc(8);
  mem::Addr f1 = t.flag(1);
  mem::Addr f2 = t.flag(1);

  t.nic(1).post_recv(RecvDesc{0, 2, dst2, 8, f2, 1});
  t.nic(1).post_recv(RecvDesc{0, 1, dst1, 8, f1, 1});
  t.nic(0).ring_doorbell(SendDesc{1, src1, 8, 1, 0, 1});
  t.nic(0).ring_doorbell(SendDesc{1, src2, 8, 2, 0, 1});
  t.sim.run();

  EXPECT_EQ(t.mem(1).load<std::uint64_t>(dst1), 111u);
  EXPECT_EQ(t.mem(1).load<std::uint64_t>(dst2), 222u);
}

TEST(Nic, RecvBufferTooSmallFaults) {
  TwoNodes t;
  mem::Addr src = t.mem(0).alloc(128);
  mem::Addr dst = t.mem(1).alloc(8);
  t.nic(1).post_recv(RecvDesc{0, 1, dst, 8, 0, 1});
  t.nic(0).ring_doorbell(SendDesc{1, src, 128, 1, 0, 1});
  // The rx loop throws; the process finishes with an exception recorded.
  t.sim.run();
  SUCCEED();  // fault is surfaced via the process log; no crash or silent
              // corruption
}

TEST(Nic, CommandsExecuteFifo) {
  TwoNodes t;
  mem::Addr src = t.mem(0).alloc(64);
  mem::Addr dst = t.mem(1).alloc(64);
  mem::Addr flags[4];
  for (auto& f : flags) f = t.flag(1);
  for (int i = 0; i < 4; ++i) {
    PutDesc p;
    p.target = 1;
    p.local_addr = src;
    p.bytes = 64;
    p.remote_addr = dst;
    p.remote_flag = flags[i];
    p.flag_value = static_cast<std::uint64_t>(i + 1);
    t.nic(0).ring_doorbell(p);
  }
  t.sim.run();
  // All arrived; FIFO per path means last flag written last, and the final
  // memory value reflects command order.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(t.mem(1).load<std::uint64_t>(flags[i]), static_cast<std::uint64_t>(i + 1));
  }
}

}  // namespace
}  // namespace gputn::nic

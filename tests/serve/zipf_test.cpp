// Zipf key sampler: determinism and empirical skew.
#include "serve/zipf.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/random.hpp"

namespace gputn::serve {
namespace {

TEST(Zipf, RejectsDegenerateParameters) {
  EXPECT_THROW(Zipf(0, 0.99), std::invalid_argument);
  EXPECT_THROW(Zipf(16, -0.5), std::invalid_argument);
}

TEST(Zipf, SameSeedSameKeys_DifferentSeedDiverges) {
  Zipf z(4096, 0.99);
  auto draw = [&](std::uint64_t seed) {
    sim::Rng rng(seed);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 512; ++i) keys.push_back(z.sample(rng.uniform()));
    return keys;
  };
  EXPECT_EQ(draw(7), draw(7));
  EXPECT_NE(draw(7), draw(8));
}

TEST(Zipf, PmfSumsToOneAndRanksDecrease) {
  Zipf z(1000, 1.1);
  double sum = 0.0;
  for (std::uint64_t k = 0; k < 1000; ++k) sum += z.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(z.pmf(0), z.pmf(1));
  EXPECT_GT(z.pmf(1), z.pmf(10));
  EXPECT_GT(z.pmf(10), z.pmf(999));
  EXPECT_EQ(z.pmf(1000), 0.0);  // out of range
}

TEST(Zipf, EmpiricalSkewMatchesTheory) {
  // At s = 0.99 over 1024 keys the hottest key carries ~13% of the mass
  // and the top-16 around 44%; a uniform sampler would give 1/1024 each.
  Zipf z(1024, 0.99);
  sim::Rng rng(42);
  std::vector<std::uint64_t> counts(1024, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[z.sample(rng.uniform())];

  double hottest = static_cast<double>(counts[0]) / kDraws;
  EXPECT_NEAR(hottest, z.pmf(0), 0.01);
  EXPECT_GT(hottest, 0.08);

  std::uint64_t top16 = 0;
  double theory16 = 0.0;
  for (int k = 0; k < 16; ++k) {
    top16 += counts[k];
    theory16 += z.pmf(static_cast<std::uint64_t>(k));
  }
  double empirical16 = static_cast<double>(top16) / kDraws;
  EXPECT_NEAR(empirical16, theory16, 0.02);
  EXPECT_GT(empirical16, 0.35);  // uniform would give 16/1024 ~ 1.6%
}

TEST(Zipf, ZeroSkewIsUniform) {
  Zipf z(64, 0.0);
  for (std::uint64_t k = 0; k < 64; ++k) {
    EXPECT_NEAR(z.pmf(k), 1.0 / 64.0, 1e-12);
  }
  // The inverse CDF maps u directly: u in [k/64, (k+1)/64) -> key k.
  EXPECT_EQ(z.sample(0.0), 0u);
  EXPECT_EQ(z.sample(0.5), 32u);
  EXPECT_EQ(z.sample(0.999), 63u);
}

}  // namespace
}  // namespace gputn::serve

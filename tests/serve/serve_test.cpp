// Serving workload: correctness, determinism, SLO accounting, and the
// CPU-proxy vs GPU-TN tail separation under load.
#include "serve/serve.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "workloads/strategy.hpp"

namespace gputn::serve {
namespace {

using workloads::Strategy;

ServeConfig small_config(Strategy s) {
  ServeConfig cfg;
  cfg.strategy = s;
  cfg.quiet = true;
  cfg.tenants = 2;
  cfg.window = 2;
  cfg.requests = 80;
  cfg.keyspace = 128;
  cfg.read_fraction = 0.5;
  cfg.offered_load = 1e6;
  return cfg;
}

TEST(Serve, RejectsInvalidConfigs) {
  ServeConfig cfg = small_config(Strategy::kHdn);
  EXPECT_THROW(run_serve(cfg), std::invalid_argument);  // CPU / GPU-TN only
  cfg = small_config(Strategy::kCpu);
  cfg.nodes = 3;  // clients + servers is 4
  EXPECT_THROW(run_serve(cfg), std::invalid_argument);
  cfg = small_config(Strategy::kCpu);
  cfg.value_bytes = 8;  // header needs 16
  EXPECT_THROW(run_serve(cfg), std::invalid_argument);
  cfg = small_config(Strategy::kCpu);
  cfg.read_fraction = 1.5;
  EXPECT_THROW(run_serve(cfg), std::invalid_argument);
}

TEST(Serve, BothStrategiesVerifyAndServeEveryRequest) {
  for (Strategy s : {Strategy::kCpu, Strategy::kGpuTn}) {
    ServeResult res = run_serve(small_config(s));
    EXPECT_TRUE(res.correct) << workloads::strategy_name(s);
    EXPECT_EQ(res.requests_total, 160u);
    ASSERT_EQ(res.tenants.size(), 2u);
    for (const TenantSummary& t : res.tenants) {
      EXPECT_EQ(t.ops, 80u);
      EXPECT_EQ(t.gets + t.puts, t.ops);
      EXPECT_GT(t.gets, 0u);
      EXPECT_GT(t.puts, 0u);
      EXPECT_GT(t.p99_ns, 0.0);
      EXPECT_LE(t.p50_ns, t.p99_ns);
      EXPECT_LE(t.p99_ns, t.p999_ns);
      EXPECT_LE(t.p999_ns, t.max_ns);
    }
  }
}

TEST(Serve, ExportsPerTenantMetricContract) {
  ServeResult res = run_serve(small_config(Strategy::kGpuTn));
  // lat.* histograms drive gputn report unmodified; counters carry goodput.
  EXPECT_NE(res.net_stats.find_histogram("lat.serve.t0"), nullptr);
  EXPECT_NE(res.net_stats.find_histogram("lat.serve.t1"), nullptr);
  EXPECT_NE(res.net_stats.find_histogram("lat.serve.get"), nullptr);
  EXPECT_NE(res.net_stats.find_histogram("lat.serve.put"), nullptr);
  EXPECT_EQ(res.net_stats.counter_value("serve.t0.ops"), 80u);
  EXPECT_EQ(res.net_stats.counter_value("serve.ops"), 160u);
  EXPECT_GT(res.net_stats.counter_value("serve.t0.bytes"), 0u);
  EXPECT_LE(res.net_stats.counter_value("serve.t0.slo_ok"), 80u);
  // Doorbell batching visible: fewer doorbells than posted commands.
  EXPECT_EQ(res.net_stats.counter_value("serve.qp.posted"), 160u);
  EXPECT_LT(res.net_stats.counter_value("serve.qp.doorbells"), 160u);
  EXPECT_GT(res.net_stats.counter_value("serve.qp.doorbells"), 0u);
  // GPU-TN setup (registration + launch) precedes traffic.
  EXPECT_GT(res.setup_time, 0);
  EXPECT_EQ(res.serve_window, res.total_time - res.setup_time);
}

TEST(Serve, DeterministicAcrossRepeatedRuns) {
  for (Strategy s : {Strategy::kCpu, Strategy::kGpuTn}) {
    ServeResult a = run_serve(small_config(s));
    ServeResult b = run_serve(small_config(s));
    EXPECT_EQ(a.total_time, b.total_time);
    EXPECT_EQ(a.stats_json(), b.stats_json());
  }
  // A different seed genuinely reshuffles the schedule.
  ServeConfig reseeded = small_config(Strategy::kCpu);
  reseeded.seed = 99;
  EXPECT_NE(run_serve(reseeded).stats_json(),
            run_serve(small_config(Strategy::kCpu)).stats_json());
}

TEST(Serve, GpuTnBeatsCpuProxyTailUnderLoad) {
  // Past the CPU proxy's ~2M put/s serial service rate, queueing blows up
  // the CPU strategy's p99 while GPU-TN's parallel slots absorb the load.
  auto p99 = [](Strategy s) {
    ServeConfig cfg;
    cfg.strategy = s;
    cfg.quiet = true;
    cfg.tenants = 4;
    cfg.window = 4;
    cfg.requests = 200;
    cfg.keyspace = 256;
    cfg.read_fraction = 0.5;
    cfg.offered_load = 3e6;
    ServeResult res = run_serve(cfg);
    EXPECT_TRUE(res.correct);
    double worst = 0.0;
    for (const TenantSummary& t : res.tenants) {
      worst = std::max(worst, t.p99_ns);
    }
    return worst;
  };
  double cpu = p99(Strategy::kCpu);
  double gputn = p99(Strategy::kGpuTn);
  EXPECT_GT(cpu, 1.5 * gputn)
      << "CPU proxy p99 " << cpu << " ns vs GPU-TN " << gputn << " ns";
}

TEST(Serve, SloAccountingSeparatesConformingOps) {
  // With a 1 us budget at moderate load most ops miss; with 1 s all hit.
  ServeConfig tight = small_config(Strategy::kCpu);
  tight.slo = sim::us(1);
  ServeResult t = run_serve(tight);
  ServeConfig loose = small_config(Strategy::kCpu);
  loose.slo = sim::sec(1);
  ServeResult l = run_serve(loose);
  EXPECT_EQ(l.net_stats.counter_value("serve.slo_ok"), 160u);
  EXPECT_LT(t.net_stats.counter_value("serve.slo_ok"), 160u);
  for (const TenantSummary& ts : l.tenants) {
    EXPECT_GT(ts.goodput_rps(l.serve_window), 0.0);
  }
}

TEST(Serve, NicRateLimitThrottlesThroughput) {
  ServeConfig cfg = small_config(Strategy::kCpu);
  ServeResult base = run_serve(cfg);
  cfg.nic_rate_limit = 2e5;  // 5 us per NIC command: well under offered load
  cfg.nic_rate_burst = 2;
  ServeResult limited = run_serve(cfg);
  EXPECT_TRUE(limited.correct);
  EXPECT_GT(limited.total_time, base.total_time);
  double worst_base = 0.0, worst_limited = 0.0;
  for (const TenantSummary& t : base.tenants) {
    worst_base = std::max(worst_base, t.p99_ns);
  }
  for (const TenantSummary& t : limited.tenants) {
    worst_limited = std::max(worst_limited, t.p99_ns);
  }
  EXPECT_GT(worst_limited, worst_base);
}

}  // namespace
}  // namespace gputn::serve

// Zero-drift guard for the serving workload: observability (tracing,
// time-series sampling) and execution parallelism (exp::Runner --jobs) must
// never perturb simulated results. Every counter, timestamp, and histogram
// bucket must be bit-identical.
#include <gtest/gtest.h>

#include "exp/runner.hpp"
#include "exp/sweeps.hpp"
#include "obs/timeseries.hpp"
#include "serve/serve.hpp"
#include "sim/trace.hpp"
#include "workloads/strategy.hpp"

namespace gputn::serve {
namespace {

using workloads::Strategy;

ServeConfig drift_config(Strategy s) {
  ServeConfig cfg;
  cfg.strategy = s;
  cfg.quiet = true;
  cfg.tenants = 2;
  cfg.window = 2;
  cfg.requests = 60;
  cfg.keyspace = 64;
  cfg.read_fraction = 0.5;
  cfg.offered_load = 2e6;
  return cfg;
}

TEST(ServeDrift, TracingAndTimeseriesAreBitIdenticalToPlainRun) {
  for (Strategy s : {Strategy::kCpu, Strategy::kGpuTn}) {
    ServeResult plain = run_serve(drift_config(s));

    ServeConfig traced_cfg = drift_config(s);
    sim::TraceRecorder rec;
    traced_cfg.trace = &rec;
    ServeResult traced = run_serve(traced_cfg);
    EXPECT_GT(rec.event_count(), 0u);

    ServeConfig sampled_cfg = drift_config(s);
    obs::TimeSeries ts(sim::us(1));
    sampled_cfg.timeseries = &ts;
    ServeResult sampled = run_serve(sampled_cfg);
    EXPECT_GT(ts.rows(), 0u);

    EXPECT_EQ(plain.total_time, traced.total_time)
        << workloads::strategy_name(s);
    EXPECT_EQ(plain.total_time, sampled.total_time)
        << workloads::strategy_name(s);
    EXPECT_EQ(plain.stats_json(), traced.stats_json());
    EXPECT_EQ(plain.stats_json(), sampled.stats_json());
  }
}

TEST(ServeDrift, SweepPlanBitIdenticalAcrossJobs) {
  ServeConfig base;
  base.tenants = 2;
  base.window = 2;
  base.requests = 48;
  base.keyspace = 64;
  base.read_fraction = 0.5;
  auto plan = [&] { return exp::serve_load_plan({1e6, 3e6}, base); };

  exp::RunSummary s1 = exp::Runner(1).run(plan());
  exp::RunSummary s2 = exp::Runner(2).run(plan());
  ASSERT_EQ(s1.failures, 0u);
  EXPECT_TRUE(s1.all_correct());
  EXPECT_EQ(exp::results_json(s1), exp::results_json(s2));
  EXPECT_EQ(s1.results.size(), 4u);  // 2 loads x {CPU, GPU-TN}
}

}  // namespace
}  // namespace gputn::serve

#include "mem/dma.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "sim/units.hpp"

namespace gputn::mem {
namespace {

struct Fixture {
  sim::Simulator sim;
  Memory memory{1 << 20};
  // 1 GB/s = 1 byte/ns for easy arithmetic; 10 ns startup.
  DmaEngine dma{sim, memory, sim::Bandwidth::bytes_per_sec(1e9), sim::ns(10)};
};

TEST(Dma, CopyMovesBytesAndTakesTime) {
  Fixture f;
  Addr src = f.memory.alloc(256);
  Addr dst = f.memory.alloc(256);
  for (int i = 0; i < 256; ++i) {
    f.memory.store<std::uint8_t>(src + i, static_cast<std::uint8_t>(i));
  }
  f.sim.spawn(f.dma.copy(dst, src, 256), "copy");
  f.sim.run();
  EXPECT_EQ(f.sim.now(), sim::ns(266));  // 10 startup + 256 bytes
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(f.memory.load<std::uint8_t>(dst + i), i);
  }
  EXPECT_EQ(f.dma.bytes_moved(), 256u);
}

TEST(Dma, TransfersSerializeOnTheEngine) {
  Fixture f;
  Addr a = f.memory.alloc(1000);
  Addr b = f.memory.alloc(1000);
  Addr c = f.memory.alloc(1000);
  f.sim.spawn(f.dma.copy(b, a, 1000), "t1");
  f.sim.spawn(f.dma.copy(c, a, 1000), "t2");
  f.sim.run();
  // Two 1010 ns transfers back to back, not in parallel.
  EXPECT_EQ(f.sim.now(), sim::ns(2020));
}

TEST(Dma, ReadIntoAndWriteFromRoundTrip) {
  Fixture f;
  Addr src = f.memory.alloc(64);
  Addr dst = f.memory.alloc(64);
  f.memory.store<std::uint64_t>(src, 0x1122334455667788ull);
  f.sim.spawn(
      [](Fixture& fx, Addr s, Addr d) -> sim::Task<> {
        std::vector<std::byte> staging;
        co_await fx.dma.read_into(staging, s, 64);
        co_await fx.dma.write_from(d, staging);
      }(f, src, dst),
      "rt");
  f.sim.run();
  EXPECT_EQ(f.memory.load<std::uint64_t>(dst), 0x1122334455667788ull);
}

TEST(Dma, ZeroByteTransferCostsOnlyStartup) {
  Fixture f;
  f.sim.spawn(f.dma.consume_time(0), "zero");
  f.sim.run();
  EXPECT_EQ(f.sim.now(), sim::ns(10));
}

TEST(Dma, DataVisibleOnlyAtCompletionTime) {
  Fixture f;
  Addr src = f.memory.alloc(64);
  Addr dst = f.memory.alloc(64);
  f.memory.store<std::uint64_t>(src, 99);
  f.memory.store<std::uint64_t>(dst, 0);
  f.sim.spawn(f.dma.copy(dst, src, 64), "copy");
  f.sim.run_until(sim::ns(50));  // mid-transfer
  EXPECT_EQ(f.memory.load<std::uint64_t>(dst), 0u);
  f.sim.run();
  EXPECT_EQ(f.memory.load<std::uint64_t>(dst), 99u);
}

}  // namespace
}  // namespace gputn::mem

#include "mem/memory.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <new>
#include <stdexcept>

namespace gputn::mem {
namespace {

TEST(Memory, AllocRespectsAlignmentAndBounds) {
  Memory m(1 << 20);
  Addr a = m.alloc(100, 64);
  Addr b = m.alloc(100, 64);
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, a + 100);
  EXPECT_NE(a, 0u);  // address 0 is never handed out
}

TEST(Memory, AllocThrowsWhenExhausted) {
  Memory m(4096);
  EXPECT_THROW(m.alloc(1 << 20), std::bad_alloc);
}

TEST(Memory, AllocRejectsBadAlignment) {
  Memory m(4096);
  EXPECT_THROW(m.alloc(8, 3), std::invalid_argument);
  EXPECT_THROW(m.alloc(8, 0), std::invalid_argument);
}

TEST(Memory, LoadStoreRoundTrip) {
  Memory m(1 << 16);
  Addr a = m.alloc(64);
  m.store<std::uint64_t>(a, 0xdeadbeefcafe1234ull);
  EXPECT_EQ(m.load<std::uint64_t>(a), 0xdeadbeefcafe1234ull);
  m.store<double>(a + 8, 3.25);
  EXPECT_DOUBLE_EQ(m.load<double>(a + 8), 3.25);
}

TEST(Memory, OutOfBoundsAccessThrows) {
  Memory m(4096);
  std::uint64_t v = 0;
  EXPECT_THROW(m.read(4096, &v, 8), std::out_of_range);
  EXPECT_THROW(m.write(4090, &v, 8), std::out_of_range);
}

TEST(Memory, TypedSpanViewsBackingStore) {
  Memory m(1 << 16);
  Addr a = m.alloc(sizeof(float) * 8, 64);
  auto s = m.typed<float>(a, 8);
  for (int i = 0; i < 8; ++i) s[i] = static_cast<float>(i);
  EXPECT_FLOAT_EQ(m.load<float>(a + 4 * sizeof(float)), 4.0f);
}

TEST(Memory, BufferHelper) {
  Memory m(1 << 16);
  Buffer<std::uint32_t> buf(m, 16);
  EXPECT_EQ(buf.size(), 16u);
  EXPECT_EQ(buf.bytes(), 64u);
  buf[3] = 77;
  EXPECT_EQ(m.load<std::uint32_t>(buf.addr() + 3 * 4), 77u);
}

class RecordingHandler : public MmioHandler {
 public:
  void on_mmio_store(Addr addr, std::uint64_t value) override {
    last_addr = addr;
    last_value = value;
    ++stores;
  }
  Addr last_addr = 0;
  std::uint64_t last_value = 0;
  int stores = 0;
};

TEST(Memory, MmioRoutesToHandler) {
  Memory m(4096);
  RecordingHandler h1, h2;
  Addr w1 = m.map_mmio(8, &h1);
  Addr w2 = m.map_mmio(8, &h2);
  EXPECT_TRUE(m.is_mmio(w1));
  EXPECT_NE(w1, w2);
  m.mmio_store(w1, 42);
  m.mmio_store(w2, 43);
  EXPECT_EQ(h1.last_value, 42u);
  EXPECT_EQ(h2.last_value, 43u);
  EXPECT_EQ(h1.stores, 1);
}

TEST(Memory, MmioUnmappedThrows) {
  Memory m(4096);
  RecordingHandler h;
  Addr w = m.map_mmio(8, &h);
  EXPECT_THROW(m.mmio_store(w + 8, 1), std::out_of_range);
  EXPECT_THROW(m.mmio_store(kMmioBase + (1 << 30), 1), std::out_of_range);
}

TEST(Memory, FunctionalAccessToMmioThrows) {
  Memory m(4096);
  RecordingHandler h;
  Addr w = m.map_mmio(8, &h);
  std::uint64_t v;
  EXPECT_THROW(m.read(w, &v, 8), std::out_of_range);
}

}  // namespace
}  // namespace gputn::mem

#include "gpu/gpu.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "mem/memory.hpp"
#include "sim/simulator.hpp"

namespace gputn::gpu {
namespace {

GpuConfig fast_config() {
  GpuConfig c;
  c.launch_latency = sim::us(1.5);
  c.teardown_latency = sim::us(1.5);
  return c;
}

struct Rig {
  explicit Rig(GpuConfig cfg = fast_config()) : gpu(sim, memory, cfg) {}
  ~Rig() { sim.reap_processes(); }
  sim::Simulator sim;
  mem::Memory memory{1 << 22};
  Gpu gpu;
};

TEST(Gpu, EmptyKernelPaysLaunchAndTeardown) {
  Rig r;
  auto rec = r.gpu.enqueue_kernel(KernelDesc{"empty", 1, 64, nullptr});
  r.sim.run();
  EXPECT_TRUE(rec->done.triggered());
  EXPECT_EQ(rec->launch_begin, 0);
  EXPECT_EQ(rec->exec_begin, sim::us(1.5));
  EXPECT_EQ(rec->exec_end, sim::us(1.5));
  EXPECT_EQ(rec->done_time, sim::us(3.0));
}

TEST(Gpu, KernelsOnStreamRunInOrder) {
  Rig r;
  auto a = r.gpu.enqueue_kernel(KernelDesc{"a", 1, 64, nullptr});
  auto b = r.gpu.enqueue_kernel(KernelDesc{"b", 1, 64, nullptr});
  r.sim.run();
  EXPECT_EQ(b->launch_begin, a->done_time);
  EXPECT_EQ(b->done_time, sim::us(6.0));
}

TEST(Gpu, WorkGroupsExecuteConcurrentlyAcrossCus) {
  GpuConfig cfg = fast_config();
  cfg.cu_count = 4;
  cfg.wg_dispatch_latency = 0;
  Rig r(cfg);
  // 8 WGs of 1 us each on 4 CUs -> 2 waves -> 2 us exec.
  KernelDesc k;
  k.name = "waves";
  k.num_wgs = 8;
  k.fn = [](WorkGroupCtx& ctx) -> sim::Task<> {
    co_await ctx.compute(sim::us(1));
  };
  auto rec = r.gpu.enqueue_kernel(std::move(k));
  r.sim.run();
  EXPECT_EQ(rec->exec_end - rec->exec_begin, sim::us(2));
}

TEST(Gpu, ComputeFlopsMatchesThroughput) {
  GpuConfig cfg = fast_config();
  cfg.flops_per_cu_per_cycle = 128;
  cfg.clock_ghz = 1.0;  // 128 flops/ns per CU
  cfg.wg_dispatch_latency = 0;
  Rig r(cfg);
  KernelDesc k;
  k.num_wgs = 1;
  k.fn = [](WorkGroupCtx& ctx) -> sim::Task<> {
    co_await ctx.compute_flops(128000.0);  // 1000 ns
  };
  auto rec = r.gpu.enqueue_kernel(std::move(k));
  r.sim.run();
  EXPECT_EQ(rec->exec_end - rec->exec_begin, sim::us(1));
}

TEST(Gpu, SystemScopeStoreReachesMemoryAndCostsTime) {
  Rig r;
  mem::Addr target = r.memory.alloc(8);
  KernelDesc k;
  k.num_wgs = 1;
  k.fn = [target](WorkGroupCtx& ctx) -> sim::Task<> {
    co_await ctx.store_system(target, 1234);
  };
  r.gpu.enqueue_kernel(std::move(k));
  r.sim.run();
  EXPECT_EQ(r.memory.load<std::uint64_t>(target), 1234u);
}

TEST(Gpu, PollWaitsForFlag) {
  Rig r;
  mem::Addr flag = r.memory.alloc(8);
  r.memory.store<std::uint64_t>(flag, 0);
  sim::Tick seen_at = -1;
  KernelDesc k;
  k.num_wgs = 1;
  k.fn = [&r, flag, &seen_at](WorkGroupCtx& ctx) -> sim::Task<> {
    co_await ctx.wait_value_ge(flag, 5);
    seen_at = r.sim.now();
  };
  r.gpu.enqueue_kernel(std::move(k));
  r.sim.schedule_at(sim::us(20), [&] { r.memory.store<std::uint64_t>(flag, 5); });
  r.sim.run();
  EXPECT_GE(seen_at, sim::us(20));
  EXPECT_LT(seen_at, sim::us(21));
}

TEST(Gpu, MemoryModelHazardDetected) {
  // §4.2.6: a trigger store (MMIO) without an intervening release fence is
  // the correctness bug the paper warns about; the model flags it.
  Rig r;
  struct NullHandler : mem::MmioHandler {
    void on_mmio_store(mem::Addr, std::uint64_t) override {}
  } handler;
  mem::Addr trig = r.memory.map_mmio(8, &handler);
  mem::Addr buf = r.memory.alloc(64);

  KernelDesc bad;
  bad.num_wgs = 1;
  bad.fn = [trig, buf](WorkGroupCtx& ctx) -> sim::Task<> {
    ctx.store_data<std::uint64_t>(buf, 1);  // unfenced buffer write
    co_await ctx.store_system(trig, 42);    // hazard!
  };
  r.gpu.enqueue_kernel(std::move(bad));
  r.sim.run();
  EXPECT_EQ(r.gpu.memory_model_hazards(), 1u);

  KernelDesc good;
  good.num_wgs = 1;
  good.fn = [trig, buf](WorkGroupCtx& ctx) -> sim::Task<> {
    ctx.store_data<std::uint64_t>(buf, 2);
    co_await ctx.fence_system();          // release fence (Figure 7a)
    co_await ctx.store_system(trig, 43);  // safe
  };
  r.gpu.enqueue_kernel(std::move(good));
  r.sim.run();
  EXPECT_EQ(r.gpu.memory_model_hazards(), 1u) << "fenced store is not a hazard";
}

TEST(Gpu, WorkGroupIdsCoverGrid) {
  Rig r;
  std::vector<int> seen;
  KernelDesc k;
  k.num_wgs = 10;
  k.items_per_wg = 32;
  k.fn = [&seen](WorkGroupCtx& ctx) -> sim::Task<> {
    seen.push_back(ctx.wg_id());
    EXPECT_EQ(ctx.num_wgs(), 10);
    EXPECT_EQ(ctx.items_per_wg(), 32);
    EXPECT_EQ(ctx.leader_global_id(), ctx.wg_id() * 32);
    co_return;
  };
  r.gpu.enqueue_kernel(std::move(k));
  r.sim.run();
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(seen[i], i);
}

TEST(LaunchModel, AmortizedCurveDescendsToFloor) {
  AmortizedLaunchModel m("x", sim::us(4), sim::us(16));
  EXPECT_EQ(m.launch_cost(1), sim::us(20));
  EXPECT_EQ(m.launch_cost(4), sim::us(8));
  EXPECT_GT(m.launch_cost(2), m.launch_cost(16));
  EXPECT_NEAR(sim::to_us(m.launch_cost(256)), 4.06, 0.01);
}

TEST(LaunchModel, Figure1ProfilesSpanDescribedEnvelope) {
  auto profiles = figure1_gpu_profiles();
  ASSERT_EQ(profiles.size(), 3u);
  for (const auto& p : profiles) {
    // "even the best case takes 3-4us": floor within envelope.
    EXPECT_GE(p->launch_cost(256), sim::us(3.0));
    EXPECT_LE(p->launch_cost(256), sim::us(4.5));
    // single-kernel cost within the 3-20 us range
    EXPECT_LE(p->launch_cost(1), sim::us(20.0));
    EXPECT_GT(p->launch_cost(1), p->launch_cost(256));
  }
}

TEST(Gpu, BatchedLaunchUsesQueueDepth) {
  GpuConfig cfg = fast_config();
  Rig r(cfg);
  r.gpu.set_launch_model(
      std::make_unique<AmortizedLaunchModel>("t", sim::us(4), sim::us(16)));
  std::vector<std::shared_ptr<KernelRecord>> recs;
  for (int i = 0; i < 4; ++i) {
    recs.push_back(r.gpu.enqueue_kernel(KernelDesc{"e", 1, 64, nullptr}));
  }
  r.sim.run();
  // First kernel sees 4 commands queued: cost 4 + 16/4 = 8 us. Last sees 1:
  // 20 us.
  EXPECT_EQ(recs[0]->exec_begin - recs[0]->launch_begin, sim::us(8));
  EXPECT_EQ(recs[3]->exec_begin - recs[3]->launch_begin, sim::us(20));
}

}  // namespace
}  // namespace gputn::gpu

namespace gputn::gpu {
namespace {

TEST(Gpu, OccupancyAllowsMoreResidentWorkGroups) {
  GpuConfig cfg = fast_config();
  cfg.cu_count = 2;
  cfg.max_wgs_per_cu = 2;
  cfg.wg_dispatch_latency = 0;
  Rig r(cfg);
  // 8 WGs of 1 us on 2 CUs x occupancy 2 = 4 slots -> 2 waves -> 2 us.
  KernelDesc k;
  k.num_wgs = 8;
  k.fn = [](WorkGroupCtx& ctx) -> sim::Task<> {
    co_await ctx.compute(sim::us(1));
  };
  auto rec = r.gpu.enqueue_kernel(std::move(k));
  r.sim.run();
  EXPECT_EQ(rec->exec_end - rec->exec_begin, sim::us(2));
}

TEST(Gpu, PersistentKernelOversubscriptionLivelocks) {
  // A persistent kernel with more cross-synchronizing work-groups than
  // resident slots can never make progress: WG 0 polls a flag only WG 2
  // (never resident) would set. The model faithfully livelocks; the
  // harness detects it with a bounded run.
  GpuConfig cfg = fast_config();
  cfg.cu_count = 2;
  cfg.max_wgs_per_cu = 1;
  Rig r(cfg);
  mem::Addr flag = r.memory.alloc(8);
  r.memory.store<std::uint64_t>(flag, 0);
  KernelDesc k;
  k.num_wgs = 3;
  k.fn = [flag](WorkGroupCtx& ctx) -> sim::Task<> {
    if (ctx.wg_id() == 2) {
      co_await ctx.store_system(flag, 1);
    } else {
      co_await ctx.wait_value_ge(flag, 1);  // resident WGs spin forever
    }
  };
  auto rec = r.gpu.enqueue_kernel(std::move(k));
  r.sim.run_until(sim::ms(1));
  EXPECT_FALSE(rec->done.triggered()) << "livelock must not resolve";

  // The same kernel with occupancy 2 has slots for all three WGs.
  GpuConfig ok_cfg = fast_config();
  ok_cfg.cu_count = 2;
  ok_cfg.max_wgs_per_cu = 2;
  Rig r2(ok_cfg);
  mem::Addr flag2 = r2.memory.alloc(8);
  r2.memory.store<std::uint64_t>(flag2, 0);
  KernelDesc k2;
  k2.num_wgs = 3;
  k2.fn = [flag2](WorkGroupCtx& ctx) -> sim::Task<> {
    if (ctx.wg_id() == 2) {
      co_await ctx.store_system(flag2, 1);
    } else {
      co_await ctx.wait_value_ge(flag2, 1);
    }
  };
  auto rec2 = r2.gpu.enqueue_kernel(std::move(k2));
  r2.sim.run_until(sim::ms(1));
  EXPECT_TRUE(rec2->done.triggered());
}

TEST(Gpu, DivergenceSerializesPaths) {
  Rig r;
  sim::Tick uniform = -1, divergent = -1;
  KernelDesc a;
  a.num_wgs = 1;
  a.fn = [](WorkGroupCtx& ctx) -> sim::Task<> {
    co_await ctx.diverged(1, sim::ns(400));
  };
  auto ra = r.gpu.enqueue_kernel(std::move(a));
  KernelDesc b;
  b.num_wgs = 1;
  b.fn = [](WorkGroupCtx& ctx) -> sim::Task<> {
    co_await ctx.diverged(4, sim::ns(400));  // 4-way divergence
  };
  auto rb = r.gpu.enqueue_kernel(std::move(b));
  r.sim.run();
  uniform = ra->exec_end - ra->exec_begin;
  divergent = rb->exec_end - rb->exec_begin;
  EXPECT_EQ(divergent - uniform, 3 * sim::ns(400));
  EXPECT_EQ(r.gpu.stats().counter_value("divergent_regions"), 2u);
}

}  // namespace
}  // namespace gputn::gpu

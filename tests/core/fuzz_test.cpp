// Randomized property suite: for seeded-random schedules of host posts and
// GPU triggers (random times, random thresholds, random granularity), every
// registered operation fires exactly once and every payload arrives intact.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "core/triggered.hpp"
#include "net/fabric.hpp"
#include "nic/nic.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace gputn::core {
namespace {

struct FuzzRig {
  FuzzRig() {
    for (int i = 0; i < 2; ++i) {
      mems.push_back(std::make_unique<mem::Memory>(4 << 20));
      nics.push_back(std::make_unique<nic::Nic>(sim, *mems.back(), fabric,
                                                nic::NicConfig{}));
      TriggeredNicConfig cfg;
      cfg.table.lookup = LookupKind::kHash;
      trigs.push_back(std::make_unique<TriggeredNic>(sim, *nics.back(),
                                                     *mems.back(), cfg));
    }
  }
  ~FuzzRig() { sim.reap_processes(); }
  sim::Simulator sim;
  net::Fabric fabric{sim, net::FabricConfig{}};
  std::vector<std::unique_ptr<mem::Memory>> mems;
  std::vector<std::unique_ptr<nic::Nic>> nics;
  std::vector<std::unique_ptr<TriggeredNic>> trigs;
};

class RandomInterleavings : public ::testing::TestWithParam<int> {};

TEST_P(RandomInterleavings, ExactlyOnceAndIntactUnderRandomSchedules) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  FuzzRig r;

  const int num_ops = static_cast<int>(rng.uniform_int(1, 24));
  struct OpInfo {
    Tag tag;
    int threshold;
    mem::Addr src, dst, flag;
    std::uint64_t payload;
  };
  std::vector<OpInfo> ops;

  for (int i = 0; i < num_ops; ++i) {
    OpInfo op;
    op.tag = static_cast<Tag>(i);
    op.threshold = static_cast<int>(rng.uniform_int(1, 6));
    op.src = r.mems[0]->alloc(64);
    op.dst = r.mems[1]->alloc(64);
    op.flag = r.mems[1]->alloc(8);
    r.mems[1]->store<std::uint64_t>(op.flag, 0);
    op.payload = rng.engine()();
    r.mems[0]->store<std::uint64_t>(op.src, op.payload);
    ops.push_back(op);
  }

  // Random post times and random trigger-write times (some writes beyond
  // the threshold, some before the post, some after).
  for (const auto& op : ops) {
    sim::Tick post_at = sim::ns(rng.uniform_int(0, 3000));
    r.sim.schedule_at(post_at, [&r, op] {
      nic::PutDesc put;
      put.target = 1;
      put.local_addr = op.src;
      put.bytes = 64;
      put.remote_addr = op.dst;
      put.remote_flag = op.flag;
      r.trigs[0]->register_put(op.tag, op.threshold, put);
    });
    int writes = op.threshold + static_cast<int>(rng.uniform_int(0, 3));
    for (int w = 0; w < writes; ++w) {
      sim::Tick at = sim::ns(rng.uniform_int(0, 3000));
      r.sim.schedule_at(at, [&r, tag = op.tag] {
        r.mems[0]->mmio_store(r.trigs[0]->trigger_address(), tag);
      });
    }
  }
  r.sim.run();

  for (const auto& op : ops) {
    EXPECT_EQ(r.mems[1]->load<std::uint64_t>(op.flag), 1u)
        << "tag " << op.tag << " threshold " << op.threshold;
    EXPECT_EQ(r.mems[1]->load<std::uint64_t>(op.dst), op.payload);
  }
  EXPECT_EQ(r.nics[1]->stats().counter_value("puts_received"),
            static_cast<std::uint64_t>(num_ops))
      << "exactly one put per op, never more";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInterleavings, ::testing::Range(0, 24));

class RandomChains : public ::testing::TestWithParam<int> {};

TEST_P(RandomChains, RandomDagsFireEveryLeaf) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  FuzzRig r;

  // Build a random forward-edge DAG of pure-chain ops; leaves carry puts.
  const int depth = static_cast<int>(rng.uniform_int(2, 8));
  std::vector<mem::Addr> leaf_flags;
  for (Tag t = 0; t < static_cast<Tag>(depth); ++t) {
    bool leaf = t == static_cast<Tag>(depth) - 1;
    if (leaf) {
      mem::Addr src = r.mems[0]->alloc(64);
      mem::Addr dst = r.mems[1]->alloc(64);
      mem::Addr flag = r.mems[1]->alloc(8);
      r.mems[1]->store<std::uint64_t>(flag, 0);
      nic::PutDesc put;
      put.target = 1;
      put.local_addr = src;
      put.bytes = 64;
      put.remote_addr = dst;
      put.remote_flag = flag;
      leaf_flags.push_back(flag);
      r.trigs[0]->register_op(t, 1, nic::Command(put), {});
    } else {
      r.trigs[0]->register_op(t, 1, std::nullopt, {t + 1});
    }
  }
  r.mems[0]->mmio_store(r.trigs[0]->trigger_address(), 0);
  r.sim.run();
  for (auto f : leaf_flags) {
    EXPECT_EQ(r.mems[1]->load<std::uint64_t>(f), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChains, ::testing::Range(0, 8));

}  // namespace
}  // namespace gputn::core

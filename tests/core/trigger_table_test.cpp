#include "core/trigger_table.hpp"

#include <gtest/gtest.h>

namespace gputn::core {
namespace {

nic::PutDesc dummy_put(int target = 1) {
  nic::PutDesc p;
  p.target = target;
  p.bytes = 8;
  return p;
}

TEST(TriggerTable, FiresWhenCounterReachesThreshold) {
  TriggerTable t(TriggerTableConfig{});
  std::vector<nic::Command> fired;
  t.register_op(TriggeredOp{/*tag=*/1, /*threshold=*/3, dummy_put(), false, 0, {}},
                fired);
  EXPECT_TRUE(fired.empty());

  auto r = t.find_or_create(1);
  EXPECT_FALSE(r.created);  // registration created the counter
  t.increment(*r.counter, fired);
  t.increment(*r.counter, fired);
  EXPECT_TRUE(fired.empty()) << "must not fire below threshold";
  t.increment(*r.counter, fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(t.ops_fired(), 1u);
}

TEST(TriggerTable, DoesNotRefireOnExtraWrites) {
  TriggerTable t(TriggerTableConfig{});
  std::vector<nic::Command> fired;
  t.register_op(TriggeredOp{1, 1, dummy_put(), false, 0, {}}, fired);
  auto r = t.find_or_create(1);
  for (int i = 0; i < 10; ++i) t.increment(*r.counter, fired);
  EXPECT_EQ(fired.size(), 1u);
}

TEST(TriggerTable, RelaxedSyncOrphanThenRegister) {
  // §3.2: GPU triggers before CPU posts. The write allocates an orphan
  // counter; registration with threshold already met fires immediately.
  TriggerTable t(TriggerTableConfig{});
  std::vector<nic::Command> fired;

  auto r = t.find_or_create(42);
  EXPECT_TRUE(r.created);
  EXPECT_TRUE(r.counter->orphan);
  t.increment(*r.counter, fired);
  t.increment(*r.counter, fired);
  EXPECT_TRUE(fired.empty()) << "no op armed yet";
  EXPECT_EQ(t.orphans_created(), 1u);

  t.register_op(TriggeredOp{42, 2, dummy_put(), false, 0, {}}, fired);
  ASSERT_EQ(fired.size(), 1u) << "threshold already met at registration";
}

TEST(TriggerTable, RelaxedSyncPartialCountThenRegister) {
  TriggerTable t(TriggerTableConfig{});
  std::vector<nic::Command> fired;
  auto r = t.find_or_create(7);
  t.increment(*r.counter, fired);  // count = 1
  t.register_op(TriggeredOp{7, 3, dummy_put(), false, 0, {}}, fired);
  EXPECT_TRUE(fired.empty());
  t.increment(*r.counter, fired);  // 2
  EXPECT_TRUE(fired.empty());
  t.increment(*r.counter, fired);  // 3 -> fire
  EXPECT_EQ(fired.size(), 1u);
}

TEST(TriggerTable, MultipleOpsOnOneCounterFireAtTheirThresholds) {
  // Multi-round schedules: ops at thresholds 1, 2, 3 on the same tag.
  TriggerTable t(TriggerTableConfig{});
  std::vector<nic::Command> fired;
  for (std::uint64_t th = 1; th <= 3; ++th) {
    t.register_op(TriggeredOp{5, th, dummy_put(static_cast<int>(th)), false, 0, {}},
                  fired);
  }
  auto r = t.find_or_create(5);
  for (int i = 0; i < 3; ++i) {
    fired.clear();
    t.increment(*r.counter, fired);
    ASSERT_EQ(fired.size(), 1u) << "exactly one op per threshold crossing";
    EXPECT_EQ(std::get<nic::PutDesc>(fired[0]).target, i + 1);
  }
}

TEST(TriggerTable, IndependentTagsDoNotInterfere) {
  TriggerTable t(TriggerTableConfig{});
  std::vector<nic::Command> fired;
  t.register_op(TriggeredOp{1, 1, dummy_put(1), false, 0, {}}, fired);
  t.register_op(TriggeredOp{2, 1, dummy_put(2), false, 0, {}}, fired);
  auto r1 = t.find_or_create(1);
  t.increment(*r1.counter, fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(std::get<nic::PutDesc>(fired[0]).target, 1);
  EXPECT_EQ(t.pending_ops(), 1);
}

TEST(TriggerTable, ReleaseRemovesCounterAndOps) {
  TriggerTable t(TriggerTableConfig{});
  std::vector<nic::Command> fired;
  t.register_op(TriggeredOp{9, 5, dummy_put(), false, 0, {}}, fired);
  EXPECT_EQ(t.active_counters(), 1);
  t.release(9);
  EXPECT_EQ(t.active_counters(), 0);
  EXPECT_EQ(t.total_ops(), 0);
  // A later write re-creates an orphan rather than touching freed state.
  auto r = t.find_or_create(9);
  EXPECT_TRUE(r.created);
}

TEST(TriggerTable, AssociativeCapacityEnforced) {
  TriggerTableConfig cfg;
  cfg.lookup = LookupKind::kAssociative;
  cfg.associative_entries = 4;
  TriggerTable t(cfg);
  std::vector<nic::Command> fired;
  for (std::uint64_t tag = 0; tag < 4; ++tag) {
    t.register_op(TriggeredOp{tag, 1, dummy_put(), false, 0, {}}, fired);
  }
  EXPECT_THROW(t.register_op(TriggeredOp{99, 1, dummy_put(), false, 0, {}}, fired),
               std::runtime_error);
  EXPECT_THROW(t.find_or_create(100), std::runtime_error);
  // Releasing frees capacity.
  t.release(0);
  EXPECT_NO_THROW(t.find_or_create(100));
}

TEST(TriggerTable, HashAndListVariantsAreUnbounded) {
  for (auto kind : {LookupKind::kHash, LookupKind::kLinkedList}) {
    TriggerTableConfig cfg;
    cfg.lookup = kind;
    cfg.associative_entries = 2;
    TriggerTable t(cfg);
    std::vector<nic::Command> fired;
    for (std::uint64_t tag = 0; tag < 100; ++tag) {
      t.register_op(TriggeredOp{tag, 1, dummy_put(), false, 0, {}}, fired);
    }
    EXPECT_EQ(t.active_counters(), 100);
  }
}

TEST(TriggerTable, LookupCostsModelHardware) {
  TriggerTableConfig cfg;
  cfg.lookup = LookupKind::kLinkedList;
  cfg.list_hop_cost = sim::ns(6);
  TriggerTable t(cfg);
  std::vector<nic::Command> fired;
  for (std::uint64_t tag = 0; tag < 10; ++tag) {
    t.register_op(TriggeredOp{tag, 1, dummy_put(), false, 0, {}}, fired);
  }
  // First entry: one hop. Last entry: ten hops.
  EXPECT_EQ(t.probe_cost(0), sim::ns(6));
  EXPECT_EQ(t.probe_cost(9), sim::ns(60));

  TriggerTableConfig assoc;
  assoc.lookup = LookupKind::kAssociative;
  assoc.associative_cost = sim::ns(4);
  TriggerTable t2(assoc);
  t2.register_op(TriggeredOp{0, 1, dummy_put(), false, 0, {}}, fired);
  EXPECT_EQ(t2.probe_cost(0), sim::ns(4));
}

// Property sweep: for any (threshold, writes >= threshold) the op fires
// exactly once; for writes < threshold it never fires.
class ThresholdProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ThresholdProperty, ExactlyOnceSemantics) {
  auto [threshold, writes] = GetParam();
  TriggerTable t(TriggerTableConfig{});
  std::vector<nic::Command> fired;
  t.register_op(
      TriggeredOp{1, static_cast<std::uint64_t>(threshold), dummy_put(), false, 0, {}},
      fired);
  auto r = t.find_or_create(1);
  for (int i = 0; i < writes; ++i) t.increment(*r.counter, fired);
  if (writes >= threshold) {
    EXPECT_EQ(fired.size(), 1u);
  } else {
    EXPECT_TRUE(fired.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ThresholdProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 8, 64, 256),
                       ::testing::Values(0, 1, 2, 7, 64, 300)));

// Property: ordering of op registration vs. counter writes never changes the
// total number of fires (relaxed synchronization invariant, §3.2).
class InterleavingProperty : public ::testing::TestWithParam<int> {};

TEST_P(InterleavingProperty, FireCountInvariantUnderReordering) {
  const int threshold = 4;
  const int total_writes = 6;
  int writes_before_register = GetParam();

  TriggerTable t(TriggerTableConfig{});
  std::vector<nic::Command> fired;
  auto write = [&] {
    auto r = t.find_or_create(3);
    t.increment(*r.counter, fired);
  };
  for (int i = 0; i < writes_before_register; ++i) write();
  t.register_op(TriggeredOp{3, threshold, dummy_put(), false, 0, {}}, fired);
  for (int i = writes_before_register; i < total_writes; ++i) write();

  EXPECT_EQ(fired.size(), 1u)
      << "exactly-once regardless of post/trigger interleaving";
}

INSTANTIATE_TEST_SUITE_P(AllInterleavings, InterleavingProperty,
                         ::testing::Range(0, 7));

}  // namespace
}  // namespace gputn::core

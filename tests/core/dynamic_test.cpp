// Dynamic GPU-TN (§3.4 — the paper's future-work extension, implemented):
// the GPU supplies the target node in the trigger store; the NIC patches
// the pre-staged put.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/triggered.hpp"
#include "net/fabric.hpp"
#include "nic/nic.hpp"
#include "sim/simulator.hpp"

namespace gputn::core {
namespace {

struct Rig {
  explicit Rig(int nodes) {
    for (int i = 0; i < nodes; ++i) {
      mems.push_back(std::make_unique<mem::Memory>(1 << 20));
      nics.push_back(std::make_unique<nic::Nic>(sim, *mems.back(), fabric,
                                                nic::NicConfig{}));
      TriggeredNicConfig cfg;
      cfg.table.lookup = LookupKind::kHash;
      trigs.push_back(std::make_unique<TriggeredNic>(sim, *nics.back(),
                                                     *mems.back(), cfg));
    }
  }
  ~Rig() { sim.reap_processes(); }
  sim::Simulator sim;
  net::Fabric fabric{sim, net::FabricConfig{}};
  std::vector<std::unique_ptr<mem::Memory>> mems;
  std::vector<std::unique_ptr<nic::Nic>> nics;
  std::vector<std::unique_ptr<TriggeredNic>> trigs;
};

TEST(DynamicTrigger, EncodingRoundTrip) {
  std::uint64_t v = encode_dynamic_trigger(/*tag=*/1234, /*target=*/7);
  EXPECT_EQ(v & 0xffffffffull, 1234u);
  EXPECT_EQ(v >> 32, 8u);  // target + 1
}

TEST(DynamicTrigger, GpuChosenTargetReceivesThePut) {
  Rig r(4);
  mem::Addr src = r.mems[0]->alloc(64);
  r.mems[0]->store<std::uint64_t>(src, 0xD17A);
  // Symmetric landing buffers at the same address on every node (PGAS
  // style), staged once with an unknown target.
  std::vector<mem::Addr> dst, flag;
  for (int i = 0; i < 4; ++i) {
    dst.push_back(r.mems[i]->alloc(64));
    flag.push_back(r.mems[i]->alloc(8));
    r.mems[i]->store<std::uint64_t>(flag.back(), 0);
  }
  nic::PutDesc put;
  put.local_addr = src;
  put.bytes = 64;
  put.remote_addr = dst[2];   // symmetric: same offset on all nodes
  put.remote_flag = flag[2];
  r.trigs[0]->register_dynamic_put(/*tag=*/9, put);

  // The "GPU" picks node 2 at trigger time.
  r.mems[0]->mmio_store(r.trigs[0]->dynamic_trigger_address(),
                        encode_dynamic_trigger(9, 2));
  r.sim.run();
  EXPECT_EQ(r.mems[2]->load<std::uint64_t>(flag[2]), 1u);
  EXPECT_EQ(r.mems[2]->load<std::uint64_t>(dst[2]), 0xD17Au);
  EXPECT_EQ(r.mems[1]->load<std::uint64_t>(flag[1]), 0u);
  EXPECT_EQ(r.mems[3]->load<std::uint64_t>(flag[3]), 0u);
}

TEST(DynamicTrigger, DifferentEventsDifferentTargets) {
  Rig r(4);
  mem::Addr src = r.mems[0]->alloc(64);
  std::vector<mem::Addr> flag;
  std::vector<mem::Addr> dst;
  for (int i = 0; i < 4; ++i) {
    dst.push_back(r.mems[i]->alloc(64));
    flag.push_back(r.mems[i]->alloc(8));
    r.mems[i]->store<std::uint64_t>(flag.back(), 0);
  }
  for (Tag tag = 0; tag < 3; ++tag) {
    nic::PutDesc put;
    put.local_addr = src;
    put.bytes = 64;
    put.remote_addr = dst[1];  // symmetric offsets
    put.remote_flag = flag[1];
    r.trigs[0]->register_dynamic_put(tag, put);
  }
  // Scatter: tag t -> node t+1.
  for (Tag tag = 0; tag < 3; ++tag) {
    r.mems[0]->mmio_store(r.trigs[0]->dynamic_trigger_address(),
                          encode_dynamic_trigger(tag, static_cast<int>(tag) + 1));
  }
  r.sim.run();
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(r.mems[i]->load<std::uint64_t>(flag[1]), 1u) << "node " << i;
  }
}

TEST(DynamicTrigger, StaticTagsStillWorkOnTheStaticAddress) {
  Rig r(2);
  mem::Addr src = r.mems[0]->alloc(64);
  mem::Addr dst = r.mems[1]->alloc(64);
  mem::Addr flag = r.mems[1]->alloc(8);
  r.mems[1]->store<std::uint64_t>(flag, 0);
  nic::PutDesc put;
  put.target = 1;
  put.local_addr = src;
  put.bytes = 64;
  put.remote_addr = dst;
  put.remote_flag = flag;
  r.trigs[0]->register_put(5, 1, put);
  r.mems[0]->mmio_store(r.trigs[0]->trigger_address(), 5);
  r.sim.run();
  EXPECT_EQ(r.mems[1]->load<std::uint64_t>(flag), 1u);
}

TEST(DynamicTrigger, NonDynamicEventOnDynamicOpFaults) {
  Rig r(2);
  mem::Addr src = r.mems[0]->alloc(64);
  nic::PutDesc put;
  put.local_addr = src;
  put.bytes = 64;
  put.remote_addr = src;
  r.trigs[0]->register_dynamic_put(3, put);
  // A static-address store carries no target: the fire must fault (the
  // match loop's process records the exception; nothing is sent).
  r.mems[0]->mmio_store(r.trigs[0]->trigger_address(), 3);
  r.sim.run();
  EXPECT_EQ(r.nics[1]->stats().counter_value("puts_received"), 0u);
}

TEST(DynamicTrigger, DynamicDecodeCostsExtraTime) {
  auto run_with = [](bool dynamic) {
    Rig r(2);
    mem::Addr src = r.mems[0]->alloc(64);
    mem::Addr dst = r.mems[1]->alloc(64);
    mem::Addr flag = r.mems[1]->alloc(8);
    r.mems[1]->store<std::uint64_t>(flag, 0);
    nic::PutDesc put;
    put.target = 1;
    put.local_addr = src;
    put.bytes = 64;
    put.remote_addr = dst;
    put.remote_flag = flag;
    if (dynamic) {
      r.trigs[0]->register_dynamic_put(1, put);
      r.mems[0]->mmio_store(r.trigs[0]->dynamic_trigger_address(),
                            encode_dynamic_trigger(1, 1));
    } else {
      r.trigs[0]->register_put(1, 1, put);
      r.mems[0]->mmio_store(r.trigs[0]->trigger_address(), 1);
    }
    r.sim.run();
    EXPECT_EQ(r.mems[1]->load<std::uint64_t>(flag), 1u);
    return r.sim.now();
  };
  sim::Tick stat = run_with(false);
  sim::Tick dyn = run_with(true);
  EXPECT_GT(dyn, stat);
  EXPECT_LE(dyn - stat, sim::ns(10)) << "decode overhead is small";
}

}  // namespace
}  // namespace gputn::core

// Timed tests of the TriggeredNic extension wired to real NICs and fabric:
// MMIO trigger stores, counter/threshold firing, and relaxed synchronization
// races resolved in "hardware" (§3.1, §3.2).
#include "core/triggered.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/fabric.hpp"
#include "nic/nic.hpp"
#include "sim/simulator.hpp"

namespace gputn::core {
namespace {

struct Rig {
  explicit Rig(TriggeredNicConfig tcfg = {}) {
    for (int i = 0; i < 2; ++i) {
      mems.push_back(std::make_unique<mem::Memory>(1 << 22));
      nics.push_back(std::make_unique<nic::Nic>(sim, *mems.back(), fabric,
                                                nic::NicConfig{}));
      trigs.push_back(
          std::make_unique<TriggeredNic>(sim, *nics.back(), *mems.back(), tcfg));
    }
  }
  ~Rig() { sim.reap_processes(); }

  mem::Memory& mem(int i) { return *mems[i]; }
  nic::Nic& nic(int i) { return *nics[i]; }
  TriggeredNic& trig(int i) { return *trigs[i]; }

  nic::PutDesc put_0_to_1(std::uint64_t value) {
    nic::PutDesc p;
    p.target = 1;
    p.local_addr = src = mem(0).alloc(64);
    p.bytes = 64;
    p.remote_addr = dst = mem(1).alloc(64);
    p.remote_flag = rflag = mem(1).alloc(8);
    mem(1).store<std::uint64_t>(rflag, 0);
    mem(0).store<std::uint64_t>(src, value);
    return p;
  }

  sim::Simulator sim;
  net::Fabric fabric{sim, net::FabricConfig{}};
  std::vector<std::unique_ptr<mem::Memory>> mems;
  std::vector<std::unique_ptr<nic::Nic>> nics;
  std::vector<std::unique_ptr<TriggeredNic>> trigs;
  mem::Addr src = 0, dst = 0, rflag = 0;
};

TEST(TriggeredNic, MmioStoreFiresRegisteredPut) {
  Rig r;
  r.trig(0).register_put(/*tag=*/11, /*threshold=*/1, r.put_0_to_1(4242));
  // The "GPU": one posted store of the tag to the trigger address.
  r.mem(0).mmio_store(r.trig(0).trigger_address(), 11);
  r.sim.run();
  EXPECT_EQ(r.mem(1).load<std::uint64_t>(r.rflag), 1u);
  EXPECT_EQ(r.mem(1).load<std::uint64_t>(r.dst), 4242u);
  EXPECT_EQ(r.trig(0).triggers_received(), 1u);
}

TEST(TriggeredNic, ThresholdCollectsMultipleWrites) {
  Rig r;
  r.trig(0).register_put(3, /*threshold=*/5, r.put_0_to_1(1));
  for (int i = 0; i < 4; ++i) {
    r.mem(0).mmio_store(r.trig(0).trigger_address(), 3);
  }
  r.sim.run();
  EXPECT_EQ(r.mem(1).load<std::uint64_t>(r.rflag), 0u) << "below threshold";
  r.mem(0).mmio_store(r.trig(0).trigger_address(), 3);
  r.sim.run();
  EXPECT_EQ(r.mem(1).load<std::uint64_t>(r.rflag), 1u);
}

TEST(TriggeredNic, TriggerBeforePostFiresOnRegistration) {
  // Relaxed synchronization (§3.2): the GPU triggers first; the CPU posts
  // later; hardware resolves the race.
  Rig r;
  auto put = r.put_0_to_1(99);
  r.mem(0).mmio_store(r.trig(0).trigger_address(), 21);
  r.sim.run();
  EXPECT_EQ(r.trig(0).table().orphans_created(), 1u);
  EXPECT_EQ(r.mem(1).load<std::uint64_t>(r.rflag), 0u);

  r.trig(0).register_put(21, 1, put);
  r.sim.run();
  EXPECT_EQ(r.mem(1).load<std::uint64_t>(r.rflag), 1u);
  EXPECT_EQ(r.mem(1).load<std::uint64_t>(r.dst), 99u);
}

TEST(TriggeredNic, RaceSweepAllInterleavingsDeliverExactlyOnce) {
  // Post at time T_post, trigger at time T_trig, for T_post before/equal/
  // after T_trig: the put must land exactly once in every interleaving.
  for (sim::Tick post_at : {0L, 50L, 100L, 150L, 500L}) {
    Rig r;
    auto put = r.put_0_to_1(7);
    r.sim.schedule_at(sim::ns(post_at), [&] {
      r.trig(0).register_put(1, 1, put);
    });
    r.sim.schedule_at(sim::ns(100), [&] {
      r.mem(0).mmio_store(r.trig(0).trigger_address(), 1);
    });
    r.sim.run();
    EXPECT_EQ(r.mem(1).load<std::uint64_t>(r.rflag), 1u)
        << "post_at=" << post_at;
    EXPECT_EQ(r.nic(1).stats().counter_value("puts_received"), 1u)
        << "post_at=" << post_at;
  }
}

TEST(TriggeredNic, DistinctTagsIndependentFiring) {
  Rig r;
  auto p1 = r.put_0_to_1(1);
  auto f1 = r.rflag;
  auto p2 = r.put_0_to_1(2);
  auto f2 = r.rflag;
  r.trig(0).register_put(100, 1, p1);
  r.trig(0).register_put(200, 1, p2);
  r.mem(0).mmio_store(r.trig(0).trigger_address(), 200);
  r.sim.run();
  EXPECT_EQ(r.mem(1).load<std::uint64_t>(f1), 0u);
  EXPECT_EQ(r.mem(1).load<std::uint64_t>(f2), 1u);
  r.mem(0).mmio_store(r.trig(0).trigger_address(), 100);
  r.sim.run();
  EXPECT_EQ(r.mem(1).load<std::uint64_t>(f1), 1u);
}

TEST(TriggeredNic, BurstOfTriggersFromManyThreads) {
  // §3.3: the NIC must absorb triggers from thousands of GPU threads in
  // quick succession. 1024 same-tick writes, threshold 1024.
  Rig r;
  r.trig(0).register_put(70, 1024, r.put_0_to_1(55));
  for (int i = 0; i < 1024; ++i) {
    r.mem(0).mmio_store(r.trig(0).trigger_address(), 70);
  }
  EXPECT_GE(r.trig(0).fifo_high_water(), 1024u);
  r.sim.run();
  EXPECT_EQ(r.mem(1).load<std::uint64_t>(r.rflag), 1u);
  EXPECT_EQ(r.nic(1).stats().counter_value("puts_received"), 1u);
}

TEST(TriggeredNic, FifoOverflowFaultsWhenConfigured) {
  TriggeredNicConfig cfg;
  cfg.fifo_depth = 4;
  cfg.fault_on_fifo_overflow = true;
  Rig r(cfg);
  r.trig(0).register_put(1, 100, r.put_0_to_1(1));
  bool threw = false;
  try {
    for (int i = 0; i < 10; ++i) {
      r.mem(0).mmio_store(r.trig(0).trigger_address(), 1);
    }
  } catch (const std::runtime_error&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
}

TEST(TriggeredNic, MixedGranularityPairsOfWorkItems) {
  // §4.2.3: threshold 2 with half as many tags sends one message per pair
  // of work-items.
  Rig r;
  std::vector<mem::Addr> flags;
  for (int pair = 0; pair < 4; ++pair) {
    auto p = r.put_0_to_1(1000 + pair);
    flags.push_back(r.rflag);
    r.trig(0).register_put(300 + pair, /*threshold=*/2, p);
  }
  // 8 "work-items": item i writes tag 300 + i/2.
  for (int item = 0; item < 8; ++item) {
    r.mem(0).mmio_store(r.trig(0).trigger_address(), 300 + item / 2);
  }
  r.sim.run();
  for (auto f : flags) {
    EXPECT_EQ(r.mem(1).load<std::uint64_t>(f), 1u);
  }
  EXPECT_EQ(r.nic(1).stats().counter_value("puts_received"), 4u);
}

TEST(TriggeredNic, LinkedListLookupCostSlowsMatching) {
  TriggeredNicConfig assoc_cfg;
  assoc_cfg.table.lookup = LookupKind::kAssociative;
  TriggeredNicConfig list_cfg;
  list_cfg.table.lookup = LookupKind::kLinkedList;
  list_cfg.table.associative_entries = 1 << 20;

  auto run_with = [](TriggeredNicConfig cfg) {
    Rig r(cfg);
    // Ten earlier tags so the target tag sits deep in the list.
    std::vector<nic::Command> sink;
    for (std::uint64_t tag = 0; tag < 10; ++tag) {
      r.trig(0).register_put(tag, 1000000, r.put_0_to_1(0));
    }
    r.trig(0).register_put(10, 1, r.put_0_to_1(5));
    auto flag = r.rflag;
    r.mem(0).mmio_store(r.trig(0).trigger_address(), 10);
    r.sim.run();
    EXPECT_EQ(r.mem(1).load<std::uint64_t>(flag), 1u);
    return r.sim.now();
  };
  EXPECT_GT(run_with(list_cfg), run_with(assoc_cfg));
}

}  // namespace
}  // namespace gputn::core

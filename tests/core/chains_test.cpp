// Chained triggered operations (Portals 4 triggered CTInc; §6): counters
// that increment other counters on firing, and counting receive events
// that let inbound puts advance the target's trigger counters — together
// enabling processor-free operation sequences.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/triggered.hpp"
#include "net/fabric.hpp"
#include "nic/nic.hpp"
#include "sim/simulator.hpp"

namespace gputn::core {
namespace {

nic::PutDesc dummy_put(int target = 1) {
  nic::PutDesc p;
  p.target = target;
  p.bytes = 8;
  return p;
}

TEST(TriggerChains, FiringIncrementsChainedCounter) {
  TriggerTable t(TriggerTableConfig{});
  std::vector<nic::Command> fired;
  // Op A on tag 1 chains to tag 2; op B on tag 2 fires a put.
  t.register_op(TriggeredOp{1, 1, std::nullopt, false, 0, {2}}, fired);
  t.register_op(TriggeredOp{2, 1, dummy_put(), false, 0, {}}, fired);
  auto r = t.find_or_create(1);
  int hops = 0;
  t.increment(*r.counter, fired, &hops);
  ASSERT_EQ(fired.size(), 1u) << "chain must cascade to op B";
  EXPECT_EQ(hops, 1);
}

TEST(TriggerChains, MultiHopCascade) {
  TriggerTable t(TriggerTableConfig{});
  std::vector<nic::Command> fired;
  // 1 -> 2 -> 3 -> 4(put)
  t.register_op(TriggeredOp{1, 1, std::nullopt, false, 0, {2}}, fired);
  t.register_op(TriggeredOp{2, 1, std::nullopt, false, 0, {3}}, fired);
  t.register_op(TriggeredOp{3, 1, std::nullopt, false, 0, {4}}, fired);
  t.register_op(TriggeredOp{4, 1, dummy_put(), false, 0, {}}, fired);
  auto r = t.find_or_create(1);
  int hops = 0;
  t.increment(*r.counter, fired, &hops);
  EXPECT_EQ(fired.size(), 1u);
  EXPECT_EQ(hops, 3);
}

TEST(TriggerChains, ChainIntoThresholdAccumulates) {
  // Two source tags each chain into a joint counter with threshold 2:
  // a hardware AND-gate (both events must occur).
  TriggerTable t(TriggerTableConfig{});
  std::vector<nic::Command> fired;
  t.register_op(TriggeredOp{1, 1, std::nullopt, false, 0, {10}}, fired);
  t.register_op(TriggeredOp{2, 1, std::nullopt, false, 0, {10}}, fired);
  t.register_op(TriggeredOp{10, 2, dummy_put(), false, 0, {}}, fired);
  auto r1 = t.find_or_create(1);
  t.increment(*r1.counter, fired);
  EXPECT_TRUE(fired.empty()) << "AND gate must wait for both inputs";
  auto r2 = t.find_or_create(2);
  t.increment(*r2.counter, fired);
  EXPECT_EQ(fired.size(), 1u);
}

TEST(TriggerChains, CommandAndChainFireTogether) {
  TriggerTable t(TriggerTableConfig{});
  std::vector<nic::Command> fired;
  t.register_op(TriggeredOp{1, 1, dummy_put(7), false, 0, {2}}, fired);
  t.register_op(TriggeredOp{2, 1, dummy_put(8), false, 0, {}}, fired);
  auto r = t.find_or_create(1);
  t.increment(*r.counter, fired);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(std::get<nic::PutDesc>(fired[0]).target, 7);
  EXPECT_EQ(std::get<nic::PutDesc>(fired[1]).target, 8);
}

TEST(TriggerChains, CycleDetected) {
  TriggerTable t(TriggerTableConfig{});
  std::vector<nic::Command> fired;
  t.register_op(TriggeredOp{1, 1, std::nullopt, false, 0, {2}}, fired);
  // 2 chains back into 1 — but op 1 already fired, so no infinite loop; a
  // genuine cycle needs re-firable ops, modelled here with high thresholds
  // that keep feeding each other. The depth guard must trip.
  for (std::uint64_t th = 2; th < 100; ++th) {
    t.register_op(TriggeredOp{1, th, std::nullopt, false, 0, {2}}, fired);
    t.register_op(TriggeredOp{2, th - 1, std::nullopt, false, 0, {1}}, fired);
  }
  auto r = t.find_or_create(1);
  EXPECT_THROW(
      {
        for (int i = 0; i < 200; ++i) t.increment(*r.counter, fired);
      },
      std::runtime_error);
}

// Cross-node chain: a put with a counting-receive tag advances the target
// NIC's trigger counter, firing a pre-staged forward put — a processor-free
// relay.
TEST(TriggerChains, CountingReceiveForwardsAcrossNodes) {
  sim::Simulator sim;
  net::Fabric fabric(sim, net::FabricConfig{});
  std::vector<std::unique_ptr<mem::Memory>> mems;
  std::vector<std::unique_ptr<nic::Nic>> nics;
  std::vector<std::unique_ptr<TriggeredNic>> trigs;
  for (int i = 0; i < 3; ++i) {
    mems.push_back(std::make_unique<mem::Memory>(1 << 20));
    nics.push_back(
        std::make_unique<nic::Nic>(sim, *mems.back(), fabric, nic::NicConfig{}));
    trigs.push_back(std::make_unique<TriggeredNic>(sim, *nics.back(),
                                                   *mems.back(),
                                                   TriggeredNicConfig{}));
  }
  // Node 0 sends to node 1; node 1's NIC auto-forwards to node 2.
  mem::Addr src = mems[0]->alloc(64);
  mems[0]->store<std::uint64_t>(src, 777);
  mem::Addr relay = mems[1]->alloc(64);
  mem::Addr dst = mems[2]->alloc(64);
  mem::Addr final_flag = mems[2]->alloc(8);
  mems[2]->store<std::uint64_t>(final_flag, 0);

  // Stage the forward put on node 1, armed by counting-receive tag 5.
  nic::PutDesc fwd;
  fwd.target = 2;
  fwd.local_addr = relay;
  fwd.bytes = 64;
  fwd.remote_addr = dst;
  fwd.remote_flag = final_flag;
  trigs[1]->register_put(5, 1, fwd);

  // First hop: put into the relay buffer, carrying the counting tag.
  nic::PutDesc first;
  first.target = 1;
  first.local_addr = src;
  first.bytes = 64;
  first.remote_addr = relay;
  first.remote_trigger_tag_plus1 = 5 + 1;
  nics[0]->ring_doorbell(first);

  sim.run();
  EXPECT_EQ(mems[2]->load<std::uint64_t>(final_flag), 1u);
  EXPECT_EQ(mems[2]->load<std::uint64_t>(dst), 777u);
  EXPECT_EQ(nics[1]->stats().counter_value("rx_trigger_events"), 1u);
  sim.reap_processes();
}

}  // namespace
}  // namespace gputn::core

// TimeSeries sampler: registration, gauge vs counter-delta semantics, CSV /
// JSON shape, and — the part that interacts with the event engine — the
// termination rule: a self-rescheduling sampler must stop once it is the
// only pending event, so sim.run() still returns.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>

#include "obs/timeseries.hpp"
#include "sim/simulator.hpp"

namespace gputn::obs {
namespace {

TEST(TimeSeries, RejectsNonPositiveInterval) {
  EXPECT_THROW(TimeSeries(0), std::invalid_argument);
  EXPECT_THROW(TimeSeries(-5), std::invalid_argument);
}

TEST(TimeSeries, RejectsDoubleStart) {
  sim::Simulator sim;
  TimeSeries ts(100);
  ts.start(sim);
  EXPECT_THROW(ts.start(sim), std::logic_error);
}

TEST(TimeSeries, GaugesSampleInstantCountersSampleDeltas) {
  sim::Simulator sim;
  std::uint64_t gauge = 0;
  std::uint64_t cumulative = 0;
  sim.schedule_in(50, [&] { gauge = 1; cumulative += 10; });
  sim.schedule_in(250, [&] { gauge = 5; cumulative += 7; });

  TimeSeries ts(100);
  ts.add_gauge("g", [&] { return gauge; });
  ts.add_counter("c", [&] { return cumulative; });
  ts.start(sim);
  sim.run();

  // Baseline at t=0, then samples at 100, 200, 300. At t=300 the sampler is
  // the only pending event, so it records its final row and stops; run()
  // returns with the clock parked there.
  EXPECT_EQ(sim.now(), 300);
  ASSERT_EQ(ts.columns(), 2u);
  ASSERT_EQ(ts.rows(), 4u);
  // Row layout: [t_ps, gauge, counter-delta].
  EXPECT_EQ(ts.cell(0, 0), 0u);
  EXPECT_EQ(ts.cell(0, 1), 0u);
  EXPECT_EQ(ts.cell(0, 2), 0u);
  EXPECT_EQ(ts.cell(1, 0), 100u);
  EXPECT_EQ(ts.cell(1, 1), 1u);   // gauge reads the instantaneous value
  EXPECT_EQ(ts.cell(1, 2), 10u);  // counter reads the per-interval delta
  EXPECT_EQ(ts.cell(2, 2), 0u);   // nothing happened in [100, 200)
  EXPECT_EQ(ts.cell(3, 1), 5u);
  EXPECT_EQ(ts.cell(3, 2), 7u);
}

TEST(TimeSeries, StopsWhenSimulationDrains) {
  // No workload events at all: baseline row plus exactly one tick, after
  // which pending_events() == 0 ends the sampler. A sampler that kept
  // rescheduling would make sim.run() spin forever.
  sim::Simulator sim;
  TimeSeries ts(100);
  ts.add_gauge("g", [] { return 0u; });
  ts.start(sim);
  sim.run();
  EXPECT_EQ(sim.now(), 100);
  EXPECT_EQ(ts.rows(), 2u);
}

TEST(TimeSeries, CsvAndJsonShape) {
  sim::Simulator sim;
  std::uint64_t v = 3;
  sim.schedule_in(40, [&] { v = 9; });
  TimeSeries ts(50);
  ts.add_gauge("net.q", [&] { return v; });
  ts.start(sim);
  sim.run();

  // Baseline at 0, final sample at 50 (the t=40 event was consumed, so the
  // sampler stops after its first tick).
  std::ostringstream csv;
  ts.write_csv(csv);
  EXPECT_EQ(csv.str(), "t_ps,net.q\n0,3\n50,9\n");

  std::ostringstream json;
  ts.write_json(json);
  EXPECT_EQ(json.str(),
            "{\n  \"interval_ps\": 50,\n  \"columns\": [\"t_ps\", "
            "\"net.q\"],\n  \"rows\": [\n    [0, 3],\n    [50, 9]\n  ]\n}\n");
}

}  // namespace
}  // namespace gputn::obs

// Zero-drift regression test for the time-series sampler (and, transitively,
// for the always-on utilization ledger).
//
// The sampler injects real events into the calendar queue, so the proof
// obligation is strict: running the fig09/fig10 mini configurations with a
// TimeSeries attached must leave every observable — the workload result,
// the verification checksum, the final simulated time, and the full
// exported stats JSON (counters, util.* ledgers, latency histograms) —
// bit-identical to the unsampled run. Exact equality on purpose: a
// one-picosecond shift means a sampler event perturbed workload ordering,
// which is a correctness bug, not a tolerance issue (same doctrine as
// tests/workloads/golden_test.cpp, and the same reason the golden total
// time is re-pinned here).
#include <gtest/gtest.h>

#include "obs/flight.hpp"
#include "obs/timeseries.hpp"
#include "serve/serve.hpp"
#include "sim/units.hpp"
#include "workloads/allreduce.hpp"
#include "workloads/jacobi.hpp"

namespace gputn::workloads {
namespace {

TEST(ZeroDrift, JacobiIdenticalWithAndWithoutSampling) {
  JacobiConfig plain;
  plain.strategy = Strategy::kGpuTn;
  plain.n = 32;
  plain.iterations = 3;
  JacobiResult base = run_jacobi(plain);

  obs::TimeSeries ts(sim::ns(500));
  JacobiConfig sampled = plain;
  sampled.timeseries = &ts;
  JacobiResult obs_run = run_jacobi(sampled);

  // The sampler must actually have sampled — otherwise this test proves
  // nothing. 10.9 us at a 500 ns interval gives the baseline row plus 20+.
  EXPECT_GT(ts.rows(), 10u);

  ASSERT_TRUE(base.correct);
  ASSERT_TRUE(obs_run.correct);
  EXPECT_EQ(base.total_time, 10921398);  // golden, pinned at the seed
  EXPECT_EQ(obs_run.total_time, base.total_time);
  EXPECT_EQ(obs_run.checksum, base.checksum);
  EXPECT_EQ(obs_run.stats_json(), base.stats_json());
}

TEST(ZeroDrift, AllreduceIdenticalWithAndWithoutSampling) {
  AllreduceConfig plain;
  plain.strategy = Strategy::kGpuTn;
  plain.nodes = 4;
  plain.elements = 65536;
  AllreduceResult base = run_allreduce(plain);

  obs::TimeSeries ts(sim::us(1));
  AllreduceConfig sampled = plain;
  sampled.timeseries = &ts;
  AllreduceResult obs_run = run_allreduce(sampled);

  EXPECT_GT(ts.rows(), 10u);
  ASSERT_TRUE(base.correct);
  ASSERT_TRUE(obs_run.correct);
  EXPECT_EQ(obs_run.total_time, base.total_time);
  EXPECT_EQ(obs_run.stats_json(), base.stats_json());
}

TEST(ZeroDrift, JacobiIdenticalWithAndWithoutFlightRecorder) {
  // The flight recorder taps message stamps at delivery time — pure
  // bookkeeping, zero events injected. Same strict contract as the
  // sampler: recorder-on must be bit-identical to recorder-off, golden
  // total time included.
  JacobiConfig plain;
  plain.strategy = Strategy::kGpuTn;
  plain.n = 32;
  plain.iterations = 3;
  JacobiResult base = run_jacobi(plain);

  obs::FlightRecorder flight(obs::FlightConfig{});
  JacobiConfig recorded = plain;
  recorded.flight = &flight;
  JacobiResult rec_run = run_jacobi(recorded);

  EXPECT_GT(flight.offered(), 0u);  // the recorder genuinely saw traffic
  ASSERT_TRUE(base.correct);
  ASSERT_TRUE(rec_run.correct);
  EXPECT_EQ(base.total_time, 10921398);  // golden, pinned at the seed
  EXPECT_EQ(rec_run.total_time, base.total_time);
  EXPECT_EQ(rec_run.checksum, base.checksum);
  EXPECT_EQ(rec_run.stats_json(), base.stats_json());
}

TEST(ZeroDrift, AllreduceIdenticalWithAndWithoutFlightRecorder) {
  AllreduceConfig plain;
  plain.strategy = Strategy::kGpuTn;
  plain.nodes = 4;
  plain.elements = 65536;
  AllreduceResult base = run_allreduce(plain);

  obs::FlightRecorder flight(obs::FlightConfig{});
  AllreduceConfig recorded = plain;
  recorded.flight = &flight;
  AllreduceResult rec_run = run_allreduce(recorded);

  EXPECT_GT(flight.offered(), 0u);
  ASSERT_TRUE(base.correct);
  ASSERT_TRUE(rec_run.correct);
  EXPECT_EQ(rec_run.total_time, base.total_time);
  EXPECT_EQ(rec_run.stats_json(), base.stats_json());
}

TEST(ZeroDrift, ServeIdenticalWithAndWithoutFlightRecorder) {
  // Serve stamps op tags and tenants onto its descriptors whether or not a
  // recorder is attached; the recorder itself must add nothing observable —
  // per-tenant SLO counters and histograms included.
  serve::ServeConfig plain;
  plain.strategy = workloads::Strategy::kCpu;
  plain.clients = 2;
  plain.servers = 2;
  plain.tenants = 2;
  plain.requests = 60;
  serve::ServeResult base = serve::run_serve(plain);

  obs::FlightRecorder flight(obs::FlightConfig{});
  serve::ServeConfig recorded = plain;
  recorded.flight = &flight;
  serve::ServeResult rec_run = serve::run_serve(recorded);

  EXPECT_GT(flight.offered(), 0u);
  ASSERT_TRUE(base.correct);
  ASSERT_TRUE(rec_run.correct);
  EXPECT_EQ(rec_run.total_time, base.total_time);
  EXPECT_EQ(rec_run.stats_json(), base.stats_json());
}

TEST(ZeroDrift, FatTreeAllreduceIdenticalWithFullObservability) {
  // The multi-switch fabric adds per-port credit ledgers and trunk-link
  // trackers; all of it must stay pure bookkeeping. Sampler + flight
  // recorder attached to a credit-limited fat-tree run must not move a
  // picosecond.
  AllreduceConfig plain;
  plain.strategy = Strategy::kGpuTn;
  plain.nodes = 8;
  plain.elements = 16 * 1024;
  plain.topology = "fat-tree:k=4";
  plain.routing = "adaptive";
  plain.credits = 4;
  AllreduceResult base = run_allreduce(plain);

  obs::TimeSeries ts(sim::us(1));
  obs::FlightRecorder flight(obs::FlightConfig{});
  AllreduceConfig observed = plain;
  observed.timeseries = &ts;
  observed.flight = &flight;
  AllreduceResult obs_run = run_allreduce(observed);

  EXPECT_GT(ts.rows(), 5u);
  EXPECT_GT(flight.offered(), 0u);
  ASSERT_TRUE(base.correct);
  ASSERT_TRUE(obs_run.correct);
  EXPECT_EQ(obs_run.total_time, base.total_time);
  EXPECT_EQ(obs_run.stats_json(), base.stats_json());
}

TEST(ZeroDrift, LedgerCountersAreDeterministicAcrossRuns) {
  // The always-on ledger itself: two identical runs export identical util.*
  // counters (guards against any hidden host-side state, e.g. unordered
  // iteration, leaking into the export).
  JacobiConfig cfg;
  cfg.strategy = Strategy::kGpuTn;
  cfg.n = 32;
  cfg.iterations = 3;
  JacobiResult a = run_jacobi(cfg);
  JacobiResult b = run_jacobi(cfg);
  EXPECT_EQ(a.stats_json(), b.stats_json());
  // And the ledger is genuinely on: the window plus at least one busy
  // resource made it into the export.
  EXPECT_EQ(a.net_stats.counter_value("util.window_ps"),
            static_cast<std::uint64_t>(a.total_time));
  EXPECT_GT(a.net_stats.counter_value("util.node0.gpu.cu.busy_ps"), 0u);
  EXPECT_GT(a.net_stats.counter_value("util.link.up0.busy_ps"), 0u);
}

}  // namespace
}  // namespace gputn::workloads

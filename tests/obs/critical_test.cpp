// Critical-path analyzer: blame categories must sum exactly to op latency,
// the CPU proxy's put path must blame measurably more server/queue time
// than GPU-TN's, diffs must self-compare clean and flag regressions, and
// malformed input must throw (the CLI turns that into a nonzero exit).
#include <cstdint>
#include <fstream>
#include <iterator>
#include <map>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "obs/critical.hpp"
#include "obs/flight.hpp"
#include "serve/serve.hpp"
#include "sim/units.hpp"

namespace gputn::obs {
namespace {

serve::ServeConfig mini_serve(workloads::Strategy strat,
                              FlightRecorder* rec) {
  serve::ServeConfig cfg;
  cfg.strategy = strat;
  cfg.clients = 2;
  cfg.servers = 2;
  cfg.tenants = 2;
  cfg.requests = 80;
  cfg.flight = rec;
  return cfg;
}

TEST(CriticalPath, BlameSumsExactlyToOpLatency) {
  // Every picosecond accounted for, none twice: the categories of every
  // recorded op add up to its end-to-end latency, on a real serve run.
  FlightRecorder rec(FlightConfig{});
  serve::ServeConfig cfg = mini_serve(workloads::Strategy::kGpuTn, &rec);
  ASSERT_TRUE(serve::run_serve(cfg).correct);

  Analysis a = analyze_flight(rec.json(), "test");
  ASSERT_EQ(a.runs.size(), 1u);
  ASSERT_GT(a.runs[0].ops.size(), 0u);
  int puts = 0;
  for (const OpRecord& op : a.runs[0].ops) {
    std::int64_t sum = 0;
    for (const auto& [cat, ps] : blame_op(op, a.runs[0].wire)) sum += ps;
    EXPECT_EQ(sum, op.latency()) << "op " << op_id(op) << " path "
                                 << op_path(op);
    if (op_path(op) == "put") ++puts;
  }
  EXPECT_GT(puts, 0);
}

TEST(CriticalPath, IdealWireMatchesFabricForUncongestedLegs) {
  // On an idle fabric the measured wire time IS the ideal: switch_queue
  // must come out zero, proving the analyzer's replica of
  // Fabric::ideal_latency agrees with the simulator's own arithmetic.
  FlightRecorder rec(FlightConfig{});
  serve::ServeConfig cfg = mini_serve(workloads::Strategy::kGpuTn, &rec);
  cfg.requests = 20;  // light load: no fabric queueing
  cfg.offered_load = 100000.0;
  ASSERT_TRUE(serve::run_serve(cfg).correct);
  Analysis a = analyze_flight(rec.json(), "test");
  for (const OpRecord& op : a.runs[0].ops) {
    auto blame = blame_op(op, a.runs[0].wire);
    EXPECT_EQ(blame["switch_queue"], 0) << "op " << op_id(op);
    EXPECT_GT(blame["wire"], 0);
  }
}

TEST(CriticalPath, CpuProxyPutPathBlamesServerMoreThanGpuTn) {
  // The acceptance separation: the CPU proxy's put path spends its tail in
  // the server (proxy scan + post), GPU-TN's does not — triggered responses
  // fire from the NIC. Compare the put-path server_proc rows directly.
  FlightRecorder cpu_rec(FlightConfig{});
  serve::ServeConfig cpu_cfg = mini_serve(workloads::Strategy::kCpu,
                                          &cpu_rec);
  ASSERT_TRUE(serve::run_serve(cpu_cfg).correct);
  FlightRecorder gtn_rec(FlightConfig{});
  serve::ServeConfig gtn_cfg = mini_serve(workloads::Strategy::kGpuTn,
                                          &gtn_rec);
  ASSERT_TRUE(serve::run_serve(gtn_cfg).correct);

  auto put_row = [](const Analysis& a,
                    const std::string& cat) -> const CategoryRow* {
    for (const PathTable& t : a.runs[0].paths) {
      if (t.path != "put") continue;
      for (const CategoryRow& r : t.rows) {
        if (r.category == cat) return &r;
      }
    }
    return nullptr;
  };
  Analysis cpu = analyze_flight(cpu_rec.json(), "cpu");
  Analysis gtn = analyze_flight(gtn_rec.json(), "gputn");
  const CategoryRow* cpu_sp = put_row(cpu, "server_proc");
  const CategoryRow* gtn_sp = put_row(gtn, "server_proc");
  ASSERT_NE(cpu_sp, nullptr);
  ASSERT_NE(gtn_sp, nullptr);
  // The CPU proxy's put tail is dominated by server-side time relative to
  // GPU-TN, whose responses need no host on the critical path.
  EXPECT_GT(cpu_sp->p999_ns, gtn_sp->p999_ns);
  EXPECT_GT(cpu_sp->share_pct, gtn_sp->share_pct);
  // And GPU-TN's put path actually used the trigger path.
  EXPECT_NE(put_row(gtn, "trigger_wait"), nullptr);
}

TEST(CriticalPath, SelfDiffIsCleanAndRegressionsAreFlagged) {
  FlightRecorder rec(FlightConfig{});
  serve::ServeConfig cfg = mini_serve(workloads::Strategy::kCpu, &rec);
  ASSERT_TRUE(serve::run_serve(cfg).correct);
  std::string dump = rec.json();
  Analysis a = analyze_flight(dump, "a");
  Analysis b = analyze_flight(dump, "b");

  AnalyzeOptions opt;
  AnalyzeDiff self = diff_analyses(a, b, opt);
  EXPECT_EQ(self.regressions, 0) << self.text;

  // Inflate one category's tail in the baseline's counterpart: current
  // being 10x slower than baseline must regress at the default threshold.
  Analysis worse = analyze_flight(dump, "worse");
  for (PathTable& t : worse.runs[0].paths) {
    for (CategoryRow& r : t.rows) {
      r.p99_ns *= 10.0;
      r.p999_ns *= 10.0;
    }
  }
  AnalyzeDiff reg = diff_analyses(worse, b, opt);
  EXPECT_GT(reg.regressions, 0);
  EXPECT_NE(reg.text.find("REGRESSION"), std::string::npos);
}

TEST(CriticalPath, ExemplarTraceDumpsTheSelectedOp) {
  FlightRecorder rec(FlightConfig{});
  serve::ServeConfig cfg = mini_serve(workloads::Strategy::kCpu, &rec);
  ASSERT_TRUE(serve::run_serve(cfg).correct);
  Analysis a = analyze_flight(rec.json(), "test");
  ASSERT_FALSE(a.runs[0].exemplars.empty());
  const OpRecord& slowest = a.runs[0].exemplars.begin()->second.front();

  std::string path = testing::TempDir() + "flight_exemplar_trace.json";
  ASSERT_TRUE(dump_exemplar_trace(a.runs[0], op_id(slowest), path));
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"blame\""), std::string::npos);
  EXPECT_NE(text.find("initiator"), std::string::npos);
  // A selector that matches nothing reports failure instead of writing.
  EXPECT_FALSE(dump_exemplar_trace(a.runs[0], 0xffffffffffffffffull, path));
}

TEST(CriticalPath, MalformedInputThrows) {
  EXPECT_THROW(analyze_flight("{not json", "x"), std::runtime_error);
  EXPECT_THROW(analyze_flight("42", "x"), std::runtime_error);
  EXPECT_THROW(analyze_flight("{\"no_ops\":true}", "x"), std::runtime_error);
  EXPECT_THROW(analyze_flight("[{\"id\":\"p\"}]", "x"), std::runtime_error);
  // Ops missing their req leg are malformed, not silently skipped.
  EXPECT_THROW(analyze_flight("{\"ops\":[{\"tenant\":0}]}", "x"),
               std::runtime_error);
}

TEST(CriticalPath, ParsesMergedArraysAndKeepsRunOrder) {
  FlightRecorder r1(FlightConfig{});
  FlightRecorder r2(FlightConfig{});
  serve::ServeConfig c1 = mini_serve(workloads::Strategy::kCpu, &r1);
  c1.requests = 20;
  ASSERT_TRUE(serve::run_serve(c1).correct);
  serve::ServeConfig c2 = mini_serve(workloads::Strategy::kGpuTn, &r2);
  c2.requests = 20;
  ASSERT_TRUE(serve::run_serve(c2).correct);
  r1.set_run_info("serve", "CPU");
  r2.set_run_info("serve", "GPU-TN");
  std::string merged =
      merged_flight_json({{"cpu/p0", &r1}, {"gputn/p1", &r2}});
  Analysis a = analyze_flight(merged, "merged");
  ASSERT_EQ(a.runs.size(), 2u);
  EXPECT_EQ(a.runs[0].id, "cpu/p0");
  EXPECT_EQ(a.runs[1].id, "gputn/p1");
  EXPECT_EQ(a.runs[0].mode, "CPU");
  EXPECT_EQ(a.runs[1].mode, "GPU-TN");
}

}  // namespace
}  // namespace gputn::obs

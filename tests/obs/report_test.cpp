// `gputn report` logic: parsing our stats / sweep JSON shapes, the exact
// rendered attribution table (pinned as a golden string — the report is a
// CI-facing artifact, so its format is part of the contract), the baseline
// diff with its regression gate, and the malformed-input error paths.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "obs/report.hpp"

namespace gputn::obs {
namespace {

// A hand-written single-run stats file: one saturated single-capacity link
// with queueing, one multi-core CPU without, one latency stage. Window is
// 1e6 ps so busy fractions are easy to eyeball (95% and 5%).
const char* kStatsFixture = R"({
  "counters": {
    "net.bytes": 1000,
    "util.window_ps": 1000000,
    "util.linkA.busy_ps": 950000,
    "util.linkA.capacity": 1,
    "util.linkA.ops": 10,
    "util.linkA.q.max": 3,
    "util.linkA.q.time_ps": 500000,
    "util.cpu.busy_ps": 400000,
    "util.cpu.capacity": 8,
    "util.cpu.ops": 5
  },
  "histograms": {
    "util.linkA.qdepth": {"count": 10, "p99": 3.0},
    "lat.wire": {"count": 4, "mean": 2000.0, "p50": 1500.0,
                 "p90": 3000.0, "p99": 3500.0, "p999": 3800.0,
                 "max": 4000.0}
  }
})";

TEST(Report, ParsesStatsFixture) {
  Report rep = parse_report(kStatsFixture, "test.json");
  ASSERT_EQ(rep.points.size(), 1u);
  const PointReport& pt = rep.points[0];
  EXPECT_EQ(pt.window_ps, 1000000u);
  ASSERT_EQ(pt.resources.size(), 2u);
  // Ranked by busy fraction: the 95%-busy link above the 5%-busy CPU.
  EXPECT_EQ(pt.resources[0].name, "linkA");
  EXPECT_EQ(pt.resources[0].busy_ps, 950000u);
  EXPECT_TRUE(pt.resources[0].has_queue);
  EXPECT_DOUBLE_EQ(pt.resources[0].q_p99, 3.0);
  EXPECT_EQ(pt.resources[1].name, "cpu");
  EXPECT_EQ(pt.resources[1].capacity, 8u);
  EXPECT_FALSE(pt.resources[1].has_queue);
  ASSERT_EQ(pt.latency.size(), 1u);
  EXPECT_EQ(pt.latency[0].stage, "wire");
  EXPECT_EQ(pt.latency[0].count, 4u);
}

TEST(Report, RendersAttributionTableExactly) {
  Report rep = parse_report(kStatsFixture, "test.json");
  std::string got = render_report(rep, ReportOptions{});
  const std::string expected =
      "== test.json (window 0.001 ms) ==\n"
      "  resource                busy%        ops       q.max  q.mean   "
      "q.p99\n"
      "  linkA                    95.0         10           3    0.50     "
      "3.0  SATURATED\n"
      "  cpu                       5.0          5           -       -       "
      "-\n"
      "  latency stages (us)       count      mean       p50       p90      "
      " p99      p999       max\n"
      "  wire                            4     2.000     1.500     3.000    "
      " 3.500     3.800     4.000\n";
  EXPECT_EQ(got, expected);
}

TEST(Report, TopLimitsAndCountsOmittedRows) {
  Report rep = parse_report(kStatsFixture, "test.json");
  ReportOptions opt;
  opt.top = 1;
  std::string got = render_report(rep, opt);
  EXPECT_NE(got.find("linkA"), std::string::npos);
  EXPECT_EQ(got.find("\n  cpu "), std::string::npos);
  EXPECT_NE(got.find("... 1 more resources (--top)"), std::string::npos);
}

TEST(Report, ParsesSweepArrayIncludingFailedPoints) {
  const char* sweep = R"([
    {"id": "a", "ok": true, "total_time_ps": 100,
     "stats": {"counters": {"util.window_ps": 100}}},
    {"id": "b", "ok": false, "error": "deadlocked"}
  ])";
  Report rep = parse_report(sweep, "sweep.json");
  ASSERT_EQ(rep.points.size(), 2u);
  EXPECT_EQ(rep.points[0].id, "a");
  EXPECT_EQ(rep.points[0].total_time_ps, 100);
  EXPECT_DOUBLE_EQ(rep.points[0].metrics.at("total_time_ps"), 100.0);
  EXPECT_FALSE(rep.points[1].ok);
  EXPECT_EQ(rep.points[1].error, "deadlocked");
  std::string rendered = render_report(rep, ReportOptions{});
  EXPECT_NE(rendered.find("== b == FAILED: deadlocked"), std::string::npos);
}

TEST(Report, DiffFlagsGatedRegressionExactly) {
  const char* base = R"([{"id": "p1", "ok": true, "total_time_ps": 100,
    "stats": {"counters": {"util.window_ps": 100}}}])";
  const char* cur = R"([{"id": "p1", "ok": true, "total_time_ps": 110,
    "stats": {"counters": {"util.window_ps": 110}}}])";
  Report b = parse_report(base, "base.json");
  Report c = parse_report(cur, "cur.json");
  Diff d = diff_reports(c, b, ReportOptions{});
  EXPECT_EQ(d.regressions, 1);
  const std::string expected =
      "== p1 vs baseline ==\n"
      "  counters.util.window_ps                        100.000 ->       "
      "110.000    +10.00%\n"
      "  total_time_ps                                  100.000 ->       "
      "110.000    +10.00%  REGRESSION (>5.0%)\n"
      "FAIL: 1 gated metric(s) regressed past 5.0%\n";
  EXPECT_EQ(d.text, expected);
}

TEST(Report, DiffPassesWithinThresholdAndOnImprovement) {
  const char* base = R"([{"id": "p1", "ok": true, "total_time_ps": 100,
    "stats": {"counters": {"util.window_ps": 100}}}])";
  const char* faster = R"([{"id": "p1", "ok": true, "total_time_ps": 80,
    "stats": {"counters": {"util.window_ps": 80}}}])";
  Report b = parse_report(base, "base.json");
  Diff self = diff_reports(b, b, ReportOptions{});
  EXPECT_EQ(self.regressions, 0);
  EXPECT_NE(self.text.find("no metric deltas"), std::string::npos);
  EXPECT_NE(self.text.find("OK: no gated metric regressed"),
            std::string::npos);

  // Improvements never gate, whatever their size.
  Report f = parse_report(faster, "cur.json");
  EXPECT_EQ(diff_reports(f, b, ReportOptions{}).regressions, 0);

  // A wider threshold lets the +10% run pass.
  const char* slower = R"([{"id": "p1", "ok": true, "total_time_ps": 110,
    "stats": {"counters": {"util.window_ps": 110}}}])";
  Report s = parse_report(slower, "cur.json");
  ReportOptions loose;
  loose.threshold_pct = 25.0;
  EXPECT_EQ(diff_reports(s, b, loose).regressions, 0);
}

TEST(Report, DiffPrintsAbsentLatencyMetricsLoudly) {
  // The baseline has a latency stage the candidate lost, and the candidate
  // has one the baseline predates. Both must be printed as "(metric
  // absent)" rows; only the *lost* gated metric gates the diff.
  const char* base = R"({
    "counters": {"util.window_ps": 100},
    "histograms": {"lat.old_stage": {"count": 2, "p99": 5.0}}
  })";
  const char* cur = R"({
    "counters": {"util.window_ps": 100},
    "histograms": {"lat.new_stage": {"count": 2, "p99": 7.0}}
  })";
  Report b = parse_report(base, "base.json");
  Report c = parse_report(cur, "cur.json");
  Diff d = diff_reports(c, b, ReportOptions{});
  auto pad = [](const std::string& key) {
    return "  " + key + std::string(key.size() < 40 ? 40 - key.size() : 1, ' ');
  };
  // Lost stage: printed, and its gated p99 counts as a regression.
  EXPECT_NE(d.text.find(pad("histograms.lat.old_stage.p99") +
                        "         5.000 -> (metric absent)"
                        "  REGRESSION (lost metric)\n"),
            std::string::npos)
      << d.text;
  // Non-gated leaves of the lost stage are printed but do not gate.
  EXPECT_NE(d.text.find(pad("histograms.lat.old_stage.count") +
                        "         2.000 -> (metric absent)\n"),
            std::string::npos)
      << d.text;
  // New stage: printed, not gated.
  EXPECT_NE(d.text.find(pad("histograms.lat.new_stage.p99") +
                        "(metric absent) ->         7.000\n"),
            std::string::npos)
      << d.text;
  EXPECT_EQ(d.regressions, 1) << d.text;
}

TEST(Report, ParsesAndRendersServeTenantSection) {
  // A serve run's stats: two tenants, 1e9 ps (1 ms) window. Tenant 0 met
  // SLO on 900 of 1000 ops -> 900 / 1 ms = 900000 good ops/s.
  const char* stats = R"({
    "counters": {
      "serve.window_ps": 1000000000,
      "serve.t0.ops": 1000, "serve.t0.slo_ok": 900, "serve.t0.bytes": 4096,
      "serve.t1.ops": 500, "serve.t1.slo_ok": 500, "serve.t1.bytes": 2048
    },
    "histograms": {
      "lat.serve.t0": {"count": 1000, "p99": 8000.0, "p999": 9500.0},
      "lat.serve.t1": {"count": 500, "p99": 4000.0, "p999": 4200.0}
    }
  })";
  Report rep = parse_report(stats, "serve.json");
  ASSERT_EQ(rep.points.size(), 1u);
  const PointReport& pt = rep.points[0];
  EXPECT_EQ(pt.serve_window_ps, 1000000000u);
  ASSERT_EQ(pt.serve.size(), 2u);
  EXPECT_EQ(pt.serve[0].tenant, 0);
  EXPECT_EQ(pt.serve[0].ops, 1000u);
  EXPECT_EQ(pt.serve[0].slo_ok, 900u);
  EXPECT_DOUBLE_EQ(pt.serve[0].slo_pct, 90.0);
  EXPECT_DOUBLE_EQ(pt.serve[0].goodput_rps, 900000.0);
  EXPECT_DOUBLE_EQ(pt.serve[0].p999_ns, 9500.0);
  EXPECT_DOUBLE_EQ(pt.serve[1].goodput_rps, 500000.0);
  // Goodput becomes a diffable metric alongside the flattened counters.
  EXPECT_DOUBLE_EQ(pt.metrics.at("serve.t0.goodput_rps"), 900000.0);

  std::string rendered = render_report(rep, ReportOptions{});
  EXPECT_NE(rendered.find("serving tenants (window 1.000 ms)"),
            std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("t0"), std::string::npos);
  EXPECT_NE(rendered.find("90.0%"), std::string::npos) << rendered;
}

TEST(Report, DiffGatesServeGoodputDrops) {
  // Goodput is gated in the opposite direction from latency: a drop past
  // the threshold regresses, growth never does. Tenant p999 stays gated
  // through the ordinary lat.* rule.
  const char* base = R"({
    "counters": {"serve.window_ps": 1000000000,
                 "serve.t0.ops": 1000, "serve.t0.slo_ok": 1000,
                 "serve.t0.bytes": 1},
    "histograms": {"lat.serve.t0": {"count": 1000, "p999": 5000.0}}
  })";
  const char* degraded = R"({
    "counters": {"serve.window_ps": 1000000000,
                 "serve.t0.ops": 1000, "serve.t0.slo_ok": 500,
                 "serve.t0.bytes": 1},
    "histograms": {"lat.serve.t0": {"count": 1000, "p999": 5000.0}}
  })";
  Report b = parse_report(base, "base.json");
  Report d = parse_report(degraded, "cur.json");

  // Self-diff clean; goodput halved regresses; the reverse direction
  // (goodput doubled) does not.
  EXPECT_EQ(diff_reports(b, b, ReportOptions{}).regressions, 0);
  Diff drop = diff_reports(d, b, ReportOptions{});
  EXPECT_EQ(drop.regressions, 1) << drop.text;
  EXPECT_NE(drop.text.find("serve.t0.goodput_rps"), std::string::npos);
  EXPECT_NE(drop.text.find("REGRESSION"), std::string::npos);
  EXPECT_EQ(diff_reports(b, d, ReportOptions{}).regressions, 0);
}

TEST(Report, TopEqualToResourceCountPrintsNoOmittedLine) {
  // --top set to exactly the number of resources shows every row and no
  // spurious "... 0 more resources" trailer.
  Report rep = parse_report(kStatsFixture, "test.json");
  ReportOptions opt;
  opt.top = 2;
  std::string got = render_report(rep, opt);
  EXPECT_NE(got.find("linkA"), std::string::npos);
  EXPECT_NE(got.find("\n  cpu "), std::string::npos);
  EXPECT_EQ(got.find("more resources"), std::string::npos) << got;
}

TEST(Report, EmptyUtilCountersRenderWithNotice) {
  // Stats that predate the utilization ledger (counters present, no
  // util.* rows): the report renders the explanatory line instead of an
  // empty table, and --top does not add an omitted-rows trailer.
  const char* stats = R"({"counters": {"net.bytes": 10}, "histograms": {}})";
  Report rep = parse_report(stats, "old.json");
  ASSERT_EQ(rep.points.size(), 1u);
  EXPECT_TRUE(rep.points[0].resources.empty());
  ReportOptions opt;
  opt.top = 5;
  std::string got = render_report(rep, opt);
  EXPECT_NE(got.find("(no util.* counters"), std::string::npos) << got;
  EXPECT_EQ(got.find("more resources"), std::string::npos) << got;
}

TEST(Report, DiffIgnoresUnknownExtraKeysInBaseline) {
  // A baseline written by a future gputn may carry keys this build does
  // not know: unknown top-level sections parse away silently, and extra
  // non-gated counters are summarized as baseline-only metrics — never
  // gated, never a crash.
  const char* cur = R"({"counters": {"util.window_ps": 100}})";
  const char* base = R"({
    "schema_version": 99,
    "future_section": {"nested": [1, 2, {"deep": true}]},
    "counters": {"util.window_ps": 100, "custom.experimental": 7}
  })";
  Report c = parse_report(cur, "cur.json");
  Report b = parse_report(base, "base.json");
  Diff d = diff_reports(c, b, ReportOptions{});
  EXPECT_EQ(d.regressions, 0) << d.text;
  EXPECT_NE(d.text.find("only in baseline"), std::string::npos) << d.text;
  EXPECT_NE(d.text.find("OK: no gated metric regressed"), std::string::npos)
      << d.text;
}

TEST(Report, MalformedInputThrows) {
  EXPECT_THROW(parse_report("{bad", "x"), std::runtime_error);
  EXPECT_THROW(parse_report("42", "x"), std::runtime_error);
  EXPECT_THROW(parse_report("[1, 2]", "x"), std::runtime_error);
  // An object without a counters section is not one of our stats files.
  EXPECT_THROW(parse_report(R"({"rows": []})", "x"), std::runtime_error);
  // Sweep points missing id / stats.
  EXPECT_THROW(parse_report(R"([{"ok": true}])", "x"), std::runtime_error);
  EXPECT_THROW(parse_report(R"([{"id": "a", "ok": true}])", "x"),
               std::runtime_error);
}

}  // namespace
}  // namespace gputn::obs

// Unit tests of the utilization ledger: busy / queue time integrals,
// capacity-aware accounting, and the stats-export naming contract the
// bottleneck report parses (util.<resource>.busy_ps etc.).
#include <gtest/gtest.h>

#include "obs/busy.hpp"
#include "sim/stats.hpp"

namespace gputn::obs {
namespace {

TEST(BusyTracker, AccumulatesBusyIntegral) {
  BusyTracker t;
  t.acquire(100);
  t.release(250);       // 150 ps busy
  t.acquire(1000);
  t.release(1100);      // +100 ps busy
  EXPECT_EQ(t.busy_ps(2000), 250u);
  EXPECT_EQ(t.ops(), 2u);
  EXPECT_EQ(t.in_use(), 0);
  EXPECT_EQ(t.in_use_max(), 1);
}

TEST(BusyTracker, SettlesInProgressWorkAtQueryTime) {
  BusyTracker t;
  t.acquire(100);
  // Still busy: the integral includes the open interval up to `now`.
  EXPECT_EQ(t.busy_ps(300), 200u);
  EXPECT_EQ(t.busy_ps(500), 400u);
  t.release(500);
  EXPECT_EQ(t.busy_ps(900), 400u);
}

TEST(BusyTracker, CapacityCountsOverlappingUnits) {
  BusyTracker t(4);
  t.acquire(0);
  t.acquire(0);         // two units busy over [0, 100)
  t.release(100);
  t.release(100);
  EXPECT_EQ(t.capacity(), 4);
  EXPECT_EQ(t.in_use_max(), 2);
  // Busy integral is unit-picoseconds: 2 units x 100 ps.
  EXPECT_EQ(t.busy_ps(100), 200u);
}

TEST(BusyTracker, QueueIntegralIsTimeWeighted) {
  BusyTracker t;
  t.enqueue(0);
  t.enqueue(0);         // depth 2 over [0, 50)
  t.dequeue(50);        // depth 1 over [50, 150)
  t.dequeue(150);
  // 2*50 + 1*100 = 200 depth-ps; mean depth over a 200 ps window = 1.0.
  EXPECT_EQ(t.queue_time_ps(200), 200u);
  EXPECT_EQ(t.queue_max(), 2);
  EXPECT_EQ(t.queue_depth(), 0);
  // Enqueue-instant depths (1 then 2) feed the histogram.
  EXPECT_EQ(t.queue_depths().count(), 2u);
}

TEST(BusyTracker, ExportNamingContract) {
  BusyTracker t(2);
  t.enqueue(0);
  t.dequeue(10);
  t.acquire(10);
  t.release(110);
  t.add_bytes(4096);
  sim::StatRegistry reg;
  t.export_into(reg, "util.node0.nic.cmd", 200);
  const auto& c = reg.counters();
  EXPECT_EQ(c.at("util.node0.nic.cmd.busy_ps"), 100u);
  EXPECT_EQ(c.at("util.node0.nic.cmd.capacity"), 2u);
  EXPECT_EQ(c.at("util.node0.nic.cmd.ops"), 1u);
  EXPECT_EQ(c.at("util.node0.nic.cmd.bytes"), 4096u);
  EXPECT_EQ(c.at("util.node0.nic.cmd.q.max"), 1u);
  EXPECT_EQ(c.at("util.node0.nic.cmd.q.time_ps"), 10u);
  EXPECT_EQ(reg.histograms().at("util.node0.nic.cmd.qdepth").count(), 1u);
}

TEST(BusyTracker, QuietResourceExportsNoQueueOrBytes) {
  BusyTracker t;
  t.acquire(0);
  t.release(50);
  sim::StatRegistry reg;
  t.export_into(reg, "util.x", 100);
  EXPECT_EQ(reg.counters().count("util.x.bytes"), 0u);
  EXPECT_EQ(reg.counters().count("util.x.q.max"), 0u);
  EXPECT_EQ(reg.counters().count("util.x.q.time_ps"), 0u);
  EXPECT_EQ(reg.histograms().count("util.x.qdepth"), 0u);
}

}  // namespace
}  // namespace gputn::obs

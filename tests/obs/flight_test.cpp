// Flight recorder: deterministic sampling, tail-exemplar retention, pairing,
// and the cross-cutting determinism contracts the tentpole promises —
// traced and untraced runs produce byte-identical flight dumps, and a
// multi-point run's merged dump is byte-identical for every --jobs value.
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "exp/plan.hpp"
#include "exp/runner.hpp"
#include "obs/critical.hpp"
#include "obs/flight.hpp"
#include "serve/serve.hpp"
#include "sim/trace.hpp"
#include "workloads/registry.hpp"

namespace gputn::obs {
namespace {

/// A minimal completed one-leg op: landed at `rx`, deposited after 100 ps.
FlightLeg leg_with_latency(std::uint64_t flow, std::int64_t rx) {
  FlightLeg l;
  l.flow = flow;
  l.kind = 2;  // kSend: single-leg
  l.bytes = 64;
  l.t_cmd = 0;
  l.t_wire = 10;
  l.t_rx = rx;
  l.t_deposit = rx + 100;
  return l;
}

TEST(FlightRecorder, SamplingIsAPureFunctionOfKeyAndSeed) {
  // Same (key, seed, period) -> same decision, always: the keep decision
  // must not depend on recorder state, arrival order, or thread count.
  for (std::uint64_t key : {1ull, 42ull, 0xdeadbeefull, (1ull << 62) + 7}) {
    for (std::uint64_t seed : {1ull, 2ull, 99ull}) {
      bool first = FlightRecorder::sampled(key, seed, 8);
      for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(FlightRecorder::sampled(key, seed, 8), first);
      }
    }
  }
  // Period 1 keeps everything; period 0 is clamped to "keep everything".
  for (std::uint64_t key = 0; key < 64; ++key) {
    EXPECT_TRUE(FlightRecorder::sampled(key, 1, 1));
    EXPECT_TRUE(FlightRecorder::sampled(key, 1, 0));
  }
  // With period 8 the hash keeps a nonzero, non-total subset.
  int kept = 0;
  for (std::uint64_t key = 0; key < 1024; ++key) {
    if (FlightRecorder::sampled(key, 1, 8)) ++kept;
  }
  EXPECT_GT(kept, 0);
  EXPECT_LT(kept, 1024);
}

TEST(FlightRecorder, ExemplarsRetainTheSlowestOpsEvenWhenSampledOut) {
  // Aggressive sampling: nearly every op misses the ring. The exemplar
  // side-channel must still retain the K slowest ops per tenant — that is
  // the whole point of always-offered exemplar capture.
  FlightConfig cfg;
  cfg.sample_period = 1 << 20;
  cfg.exemplars_per_tenant = 2;
  FlightRecorder rec(cfg);
  // Tenant 0: latencies 100.. +50 each; tenant 1: one slow op in the middle.
  std::int64_t max_rx_t0 = 0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    std::int64_t rx = 100 + static_cast<std::int64_t>(i) * 50;
    max_rx_t0 = rx;
    rec.record(leg_with_latency(1000 + i, rx), /*op_tag=*/0, /*tenant=*/0);
  }
  rec.record(leg_with_latency(5000, 999999), 0, /*tenant=*/1);
  rec.record(leg_with_latency(5001, 10), 0, 1);
  rec.record(leg_with_latency(5002, 20), 0, 1);

  EXPECT_EQ(rec.offered(), 203u);
  EXPECT_LT(rec.recorded(), 203u);  // sampling genuinely dropped ops

  auto ex0 = rec.exemplars(0);
  ASSERT_EQ(ex0.size(), 2u);
  // Slowest first, and provably the max-latency op for the tenant.
  EXPECT_EQ(ex0[0].req.t_rx, max_rx_t0);
  EXPECT_EQ(ex0[0].req.flow, 1199u);
  EXPECT_EQ(ex0[1].req.flow, 1198u);
  EXPECT_GE(ex0[0].latency(), ex0[1].latency());

  auto ex1 = rec.exemplars(1);
  ASSERT_EQ(ex1.size(), 2u);
  EXPECT_EQ(ex1[0].req.flow, 5000u);  // the one slow op leads
}

TEST(FlightRecorder, RingEvictsOldestAndCountsEvictions) {
  FlightConfig cfg;
  cfg.capacity = 4;
  FlightRecorder rec(cfg);
  for (std::uint64_t i = 0; i < 10; ++i) {
    rec.record(leg_with_latency(i + 1, 100 + static_cast<std::int64_t>(i)),
               0, -1);
  }
  EXPECT_EQ(rec.offered(), 10u);
  EXPECT_EQ(rec.recorded(), 4u);
  EXPECT_EQ(rec.evicted(), 6u);
}

TEST(FlightRecorder, PairsLegsByOpTagAcrossArrivalOrder) {
  FlightRecorder rec(FlightConfig{});
  FlightLeg req = leg_with_latency(7, 500);
  req.kind = 1;  // kPut
  FlightLeg resp = leg_with_latency(8, 900);
  resp.kind = 1;
  rec.record(req, /*op_tag=*/77, /*tenant=*/3);
  EXPECT_EQ(rec.offered(), 0u);  // first leg parks, no op yet
  rec.record(resp, 77, 3);
  EXPECT_EQ(rec.offered(), 1u);
  auto ex = rec.exemplars(3);
  ASSERT_EQ(ex.size(), 1u);
  EXPECT_EQ(ex[0].op_tag, 77u);
  EXPECT_TRUE(ex[0].has_resp());
  // Latency spans trigger-to-deposit across both legs.
  EXPECT_EQ(ex[0].latency(), ex[0].resp.t_deposit - ex[0].req.start());
}

serve::ServeConfig mini_serve(workloads::Strategy strat) {
  serve::ServeConfig cfg;
  cfg.strategy = strat;
  cfg.clients = 2;
  cfg.servers = 2;
  cfg.tenants = 2;
  cfg.requests = 60;
  return cfg;
}

TEST(FlightRecorder, TracedAndUntracedRunsProduceIdenticalDumps) {
  // Attaching a Chrome-trace recorder must not perturb a single stamp:
  // tracing is observability, the flight dump is the ground truth both
  // configurations must agree on.
  serve::ServeConfig cfg = mini_serve(workloads::Strategy::kCpu);
  FlightRecorder plain(FlightConfig{});
  cfg.flight = &plain;
  serve::ServeResult a = serve::run_serve(cfg);

  sim::TraceRecorder trace;
  FlightRecorder traced(FlightConfig{});
  cfg.flight = &traced;
  cfg.trace = &trace;
  serve::ServeResult b = serve::run_serve(cfg);

  ASSERT_TRUE(a.correct);
  ASSERT_TRUE(b.correct);
  EXPECT_GT(trace.event_count(), 0u);
  EXPECT_GT(plain.offered(), 0u);
  EXPECT_EQ(plain.json(), traced.json());
  EXPECT_EQ(a.total_time, b.total_time);
}

TEST(FlightRecorder, MergedDumpAndAnalysisAreJobsInvariant) {
  // Three serve points through the parallel engine, each with its own
  // recorder (the --flight --replicas shape). The merged dump and the
  // rendered analysis must be byte-identical for --jobs 1, 2 and 4.
  workloads::Registry& reg = workloads::Registry::instance();
  if (reg.find("serve") == nullptr) {
    workloads::register_builtin_workloads(reg);
  }
  workloads::WorkloadParams params;
  params.set("clients", "2");
  params.set("servers", "2");
  params.set("tenants", "2");
  params.set("requests", "40");

  auto run_with_jobs = [&](int jobs) {
    std::vector<std::unique_ptr<FlightRecorder>> recs;
    exp::Plan plan;
    for (int i = 0; i < 3; ++i) {
      recs.push_back(std::make_unique<FlightRecorder>(FlightConfig{}));
      workloads::RunOptions opts;
      opts.flight = recs.back().get();
      plan.add_workload(reg, "serve/p" + std::to_string(i), "serve", opts,
                        params,
                        cluster::SystemConfig::table2_with_loss(
                            0.0, static_cast<std::uint64_t>(i + 1)));
    }
    exp::RunSummary summary = exp::Runner(jobs).run(plan);
    EXPECT_EQ(summary.failures, 0u);
    std::vector<std::pair<std::string, FlightRecorder*>> points;
    for (std::size_t i = 0; i < recs.size(); ++i) {
      points.emplace_back(summary.results[i].id, recs[i].get());
    }
    return merged_flight_json(std::move(points));
  };

  std::string j1 = run_with_jobs(1);
  std::string j2 = run_with_jobs(2);
  std::string j4 = run_with_jobs(4);
  EXPECT_EQ(j1, j2);
  EXPECT_EQ(j1, j4);

  // And through the analyzer: identical dumps must render identically
  // (analyze_flight is pure, so this pins the whole pipeline).
  AnalyzeOptions opt;
  std::string r1 = render_analysis(analyze_flight(j1, "merged"), opt);
  std::string r4 = render_analysis(analyze_flight(j4, "merged"), opt);
  EXPECT_EQ(r1, r4);
  EXPECT_NE(r1.find("== run serve/p0"), std::string::npos);
  EXPECT_NE(r1.find("-- path put"), std::string::npos);
}

}  // namespace
}  // namespace gputn::obs

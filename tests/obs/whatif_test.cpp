// Causal what-if profiler: the knob registry must cover the advertised
// hardware surface, the counterfactual matrix must be bit-identical at any
// --jobs value, on an idle star fabric the wire-latency knob's measured
// delta must equal the blame-model prediction EXACTLY (integer
// picoseconds), inert knobs must be detected instead of burning runs, and
// the JSON report must round-trip with a clean self-diff while a tampered
// baseline is flagged.
#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/config.hpp"
#include "obs/whatif.hpp"
#include "sim/units.hpp"
#include "workloads/registry.hpp"

namespace gputn::obs {
namespace {

workloads::Registry& reg() {
  static workloads::Registry r = [] {
    workloads::Registry reg;
    workloads::register_builtin_workloads(reg);
    return reg;
  }();
  return r;
}

// One shared full-matrix profile of microbench (CPU + GPU-TN, default
// scales, jobs 2): several tests read it, so compute it once.
const WhatifReport& full_report() {
  static const WhatifReport rep = [] {
    WhatifOptions opt;
    opt.jobs = 2;
    return run_whatif(reg(), "microbench", workloads::WorkloadParams{},
                      workloads::RunOptions{}, cluster::SystemConfig::table2(),
                      opt);
  }();
  return rep;
}

const KnobResult* find_knob(const StrategyReport& sr,
                            const std::string& name) {
  for (const KnobResult& k : sr.knobs)
    if (k.name == name) return &k;
  return nullptr;
}

TEST(Whatif, RegistryCoversIssueKnobs) {
  // The advertised counterfactual surface: link bandwidth/latency, switch
  // latency/credits, NIC command rate, DMA bandwidth, host post cost,
  // trigger-table latency, doorbell latency/batch, GPU CU count.
  std::vector<std::string> names;
  for (const Knob& k : knob_registry()) {
    names.push_back(k.name);
    EXPECT_TRUE(k.kind == "cost" || k.kind == "capacity") << k.name;
    EXPECT_TRUE(static_cast<bool>(k.apply)) << k.name;
    EXPECT_FALSE(k.description.empty()) << k.name;
  }
  for (const char* want :
       {"link_bw", "link_lat", "switch_lat", "switch_credits", "nic_cmd_rate",
        "dma_bw", "host_post", "trigger", "doorbell", "doorbell_batch",
        "gpu_cus"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), want), names.end())
        << "missing knob " << want;
  }
}

TEST(Whatif, BitIdenticalAcrossJobs) {
  // The acceptance bar: the full matrix through exp::Runner is
  // bit-identical at --jobs 1, 2, and 4 (full_report ran at 2).
  const std::string at2 = whatif_json(full_report());
  for (int jobs : {1, 4}) {
    WhatifOptions opt;
    opt.jobs = jobs;
    WhatifReport rep =
        run_whatif(reg(), "microbench", workloads::WorkloadParams{},
                   workloads::RunOptions{}, cluster::SystemConfig::table2(),
                   opt);
    EXPECT_EQ(whatif_json(rep), at2) << "jobs=" << jobs;
  }
}

TEST(Whatif, WireKnobExactOnIdleStar) {
  // The cross-validation headline, made airtight: on an idle star fabric
  // the link-latency knob's measured end-to-end delta equals the blame
  // model's prediction EXACTLY, in integer picoseconds. Completion
  // detection is quantized by polling (CPU 60 ns, GPU 100 ns), so the
  // link latency is set to their lcm (300 ns): every counterfactual shift
  // is then a multiple of both poll periods and survives quantization.
  cluster::SystemConfig sys = cluster::SystemConfig::table2();
  sys.fabric.link_latency = sim::ns(300);
  WhatifOptions opt;
  opt.strategies = {workloads::Strategy::kGpuTn};
  opt.knobs = {"link_lat"};
  opt.scales = {2.0, kInfiniteSpeed};
  opt.curve = false;
  opt.jobs = 2;
  WhatifReport rep = run_whatif(reg(), "microbench",
                                workloads::WorkloadParams{},
                                workloads::RunOptions{}, sys, opt);
  ASSERT_EQ(rep.strategies.size(), 1u);
  const StrategyReport& sr = rep.strategies[0];
  ASSERT_TRUE(sr.baseline_ok) << sr.baseline_error;
  const KnobResult* k = find_knob(sr, "link_lat");
  ASSERT_NE(k, nullptr);
  ASSERT_FALSE(k->inert);
  ASSERT_GT(k->predicted_blame_ps, 0);
  // At 2x the measured improvement IS the blame prediction — not just
  // within tolerance, equal.
  EXPECT_EQ(k->measured_ps, k->predicted_ps);
  EXPECT_EQ(k->verdict, "match");
  // And at infinite speed the whole attributed time is recovered.
  EXPECT_EQ(k->ideal_ps, k->predicted_blame_ps);
}

TEST(Whatif, InertAndSkippedKnobs) {
  // switch_credits: the default config runs unlimited credits (0), so the
  // knob must be inert at every scale instead of burning runs.
  // doorbell_batch: rewrites a serve-only parameter, inert elsewhere.
  // gpu_cus: refuses downscales (a smaller CU budget can livelock a
  // persistent kernel) — the 0.5x point is skipped but the knob still
  // profiles the accelerating scales.
  for (const StrategyReport& sr : full_report().strategies) {
    const KnobResult* credits = find_knob(sr, "switch_credits");
    ASSERT_NE(credits, nullptr);
    EXPECT_TRUE(credits->inert) << sr.strategy;
    EXPECT_TRUE(credits->points.empty()) << sr.strategy;

    const KnobResult* batch = find_knob(sr, "doorbell_batch");
    ASSERT_NE(batch, nullptr);
    EXPECT_TRUE(batch->inert) << sr.strategy;

    const KnobResult* cus = find_knob(sr, "gpu_cus");
    ASSERT_NE(cus, nullptr);
    EXPECT_FALSE(cus->inert) << sr.strategy;
    for (const WhatifPoint& p : cus->points)
      EXPECT_GT(p.scale, 1.0) << sr.strategy;

    // Inert knobs never appear in the causal ranking.
    for (const std::string& name : sr.ranking) {
      EXPECT_NE(name, "switch_credits") << sr.strategy;
      EXPECT_NE(name, "doorbell_batch") << sr.strategy;
    }
  }
}

TEST(Whatif, CpuHostPostIsUnattributedHeadline) {
  // The cross-check's reason to exist: the CPU proxy's biggest causal win
  // is the host posting cost, which the blame taxonomy cannot see (it
  // stamps NIC-visible stages only) — flagged "unattributed", counted as
  // a divergence.
  const StrategyReport* cpu = nullptr;
  for (const StrategyReport& sr : full_report().strategies)
    if (sr.strategy == "CPU") cpu = &sr;
  ASSERT_NE(cpu, nullptr);
  ASSERT_TRUE(cpu->baseline_ok);
  const KnobResult* hp = find_knob(*cpu, "host_post");
  ASSERT_NE(hp, nullptr);
  EXPECT_EQ(hp->verdict, "unattributed");
  EXPECT_GT(hp->measured_ps, 0);
  EXPECT_EQ(hp->predicted_ps, 0);
  EXPECT_GT(cpu->divergences, 0);
}

TEST(Whatif, JsonRoundTripAndSelfDiff) {
  const WhatifReport& rep = full_report();
  const std::string json = whatif_json(rep);
  WhatifReport back = parse_whatif(json, "test");
  // The round-trip is lossless for everything the diff gate reads.
  EXPECT_EQ(whatif_json(back), json);
  WhatifDiff d = diff_whatif(rep, back, 5.0);
  EXPECT_EQ(d.regressions, 0) << d.text;
}

TEST(Whatif, DiffFlagsTopKnobChangeAndBaselineShift) {
  const WhatifReport& rep = full_report();
  WhatifReport tampered = parse_whatif(whatif_json(rep), "test");
  ASSERT_FALSE(tampered.strategies.empty());
  StrategyReport& sr = tampered.strategies[0];
  ASSERT_GE(sr.ranking.size(), 2u);
  std::swap(sr.ranking[0], sr.ranking[1]);
  sr.baseline_ps = sr.baseline_ps * 2;
  WhatifDiff d = diff_whatif(rep, tampered, 5.0);
  EXPECT_GE(d.regressions, 2) << d.text;
}

TEST(Whatif, MalformedAndInvalidInputsThrow) {
  EXPECT_THROW(parse_whatif("{not json", "bad.json"), std::runtime_error);
  EXPECT_THROW(parse_whatif("{\"no\": \"marker\"}", "bad.json"),
               std::runtime_error);

  WhatifOptions opt;
  EXPECT_THROW(run_whatif(reg(), "nope", workloads::WorkloadParams{},
                          workloads::RunOptions{},
                          cluster::SystemConfig::table2(), opt),
               std::invalid_argument);

  WhatifOptions bad_knob;
  bad_knob.knobs = {"warp_speed"};
  EXPECT_THROW(run_whatif(reg(), "microbench", workloads::WorkloadParams{},
                          workloads::RunOptions{},
                          cluster::SystemConfig::table2(), bad_knob),
               std::invalid_argument);

  // The profiler drives strategies itself; a "strategy" workload
  // parameter would silently pin every run to one strategy.
  workloads::WorkloadParams p;
  p.set("strategy", "CPU");
  EXPECT_THROW(run_whatif(reg(), "microbench", p, workloads::RunOptions{},
                          cluster::SystemConfig::table2(), opt),
               std::invalid_argument);
}

}  // namespace
}  // namespace gputn::obs

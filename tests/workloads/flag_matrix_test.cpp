// CLI flag compatibility: the pairwise {--replicas, --shards, --trace,
// --timeseries, --flight} rules live in one table (options.cpp) consumed
// by both run_workload's rejection path and `gputn config`'s rendered
// matrix. This test drives every pair through flag_conflict and pins the
// rendered matrix so a new rule cannot land in one place only.
#include <string>

#include <gtest/gtest.h>

#include "workloads/options.hpp"

namespace gputn::workloads {
namespace {

ActiveFlags make(bool replicas, bool shards, bool trace, bool timeseries,
                 bool flight) {
  ActiveFlags f;
  f.replicas = replicas;
  f.shards = shards;
  f.trace = trace;
  f.timeseries = timeseries;
  f.flight = flight;
  return f;
}

struct PairCase {
  ActiveFlags flags;
  bool ok;
  const char* a;  // expected names in the rejection message
  const char* b;
};

TEST(FlagMatrix, EveryPairMatchesTheTable) {
  const PairCase cases[] = {
      {make(true, true, false, false, false), false, "--replicas", "--shards"},
      {make(true, false, true, false, false), false, "--replicas", "--trace"},
      {make(true, false, false, true, false), false, "--replicas",
       "--timeseries"},
      {make(true, false, false, false, true), true, "", ""},
      {make(false, true, true, false, false), false, "--shards", "--trace"},
      {make(false, true, false, true, false), false, "--shards",
       "--timeseries"},
      {make(false, true, false, false, true), true, "", ""},
      {make(false, false, true, true, false), true, "", ""},
      {make(false, false, true, false, true), true, "", ""},
      {make(false, false, false, true, true), true, "", ""},
  };
  for (const PairCase& c : cases) {
    std::string msg = flag_conflict(c.flags);
    if (c.ok) {
      EXPECT_TRUE(msg.empty()) << msg;
    } else {
      ASSERT_FALSE(msg.empty()) << c.a << " + " << c.b;
      EXPECT_NE(msg.find(c.a), std::string::npos) << msg;
      EXPECT_NE(msg.find(c.b), std::string::npos) << msg;
      EXPECT_NE(msg.find("cannot be combined with"), std::string::npos) << msg;
      // The why-clause is part of the message: users see the reason, not
      // just the verdict.
      EXPECT_NE(msg.find('('), std::string::npos) << msg;
    }
  }
}

TEST(FlagMatrix, SingleFlagsAndEmptyAreAlwaysFine) {
  EXPECT_TRUE(flag_conflict(ActiveFlags{}).empty());
  EXPECT_TRUE(flag_conflict(make(true, false, false, false, false)).empty());
  EXPECT_TRUE(flag_conflict(make(false, true, false, false, false)).empty());
  EXPECT_TRUE(flag_conflict(make(false, false, true, false, false)).empty());
  EXPECT_TRUE(flag_conflict(make(false, false, false, true, false)).empty());
  EXPECT_TRUE(flag_conflict(make(false, false, false, false, true)).empty());
}

TEST(FlagMatrix, FirstListedConflictWins) {
  // With several conflicting pairs active the message names the first rule
  // in table order — deterministic, so scripts can match on it.
  std::string msg = flag_conflict(make(true, true, true, false, false));
  EXPECT_NE(msg.find("--replicas"), std::string::npos);
  EXPECT_NE(msg.find("--shards"), std::string::npos);
}

TEST(FlagMatrix, RenderedMatrixAgreesWithTheRules) {
  const std::string m = flag_matrix();
  // Header plus one row per flag, every flag named.
  for (const char* f :
       {"--replicas", "--shards", "--trace", "--timeseries", "--flight"}) {
    EXPECT_NE(m.find(f), std::string::npos) << f;
  }
  // Spot-check cells through the rule set: replicas+shards is "no",
  // timeseries+flight is "ok", and the reasons for every rejected pair are
  // listed under the grid.
  EXPECT_NE(m.find("no"), std::string::npos);
  EXPECT_NE(m.find("ok"), std::string::npos);
  EXPECT_NE(m.find("oversubscribe"), std::string::npos);
  EXPECT_NE(m.find("unsynchronized"), std::string::npos);
  // Exactly 5 "no" cells x 2 (symmetric grid): count occurrences of the
  // cell token bounded by spaces to avoid matching words.
  int no_cells = 0;
  for (std::size_t p = m.find("no "); p != std::string::npos;
       p = m.find("no ", p + 1)) {
    ++no_cells;
  }
  EXPECT_GE(no_cells, 10);
}

}  // namespace
}  // namespace gputn::workloads

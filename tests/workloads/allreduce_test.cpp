#include "workloads/allreduce.hpp"

#include <gtest/gtest.h>

namespace gputn::workloads {
namespace {

AllreduceConfig small(Strategy s, int nodes, std::size_t elems = 8192) {
  AllreduceConfig cfg;
  cfg.strategy = s;
  cfg.nodes = nodes;
  cfg.elements = elems;
  cfg.num_wgs = 4;
  return cfg;
}

class AllreduceCorrectness
    : public ::testing::TestWithParam<std::tuple<Strategy, int>> {};

TEST_P(AllreduceCorrectness, MatchesSequentialReduction) {
  auto [strategy, nodes] = GetParam();
  AllreduceResult res = run_allreduce(small(strategy, nodes));
  EXPECT_TRUE(res.correct) << strategy_name(strategy) << " nodes=" << nodes
                           << " max_error=" << res.max_error;
  EXPECT_GT(res.total_time, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllreduceCorrectness,
    ::testing::Combine(::testing::Values(Strategy::kCpu, Strategy::kHdn,
                                         Strategy::kGds, Strategy::kGpuTn),
                       ::testing::Values(2, 3, 4, 8)),
    [](const auto& info) {
      std::string n = strategy_name(std::get<0>(info.param));
      std::erase(n, '-');
      return n + "_n" + std::to_string(std::get<1>(info.param));
    });

TEST(Allreduce, OddElementCountWithRemainderChunks) {
  for (Strategy s : kAllStrategies) {
    AllreduceResult res = run_allreduce(small(s, 3, 10007));
    EXPECT_TRUE(res.correct) << strategy_name(s);
  }
}

TEST(Allreduce, Deterministic) {
  auto a = run_allreduce(small(Strategy::kGpuTn, 4));
  auto b = run_allreduce(small(Strategy::kGpuTn, 4));
  EXPECT_EQ(a.total_time, b.total_time);
}

TEST(Allreduce, GpuTnBeatsHdnAtScale) {
  // The Figure 10 effect: at higher node counts (smaller chunks), GPU-TN's
  // removal of per-step kernel boundaries wins.
  const std::size_t elems = 256 * 1024;  // 1 MB
  auto hdn = run_allreduce(small(Strategy::kHdn, 8, elems));
  auto tn = run_allreduce(small(Strategy::kGpuTn, 8, elems));
  auto gds = run_allreduce(small(Strategy::kGds, 8, elems));
  EXPECT_LT(tn.total_time, hdn.total_time);
  EXPECT_LT(tn.total_time, gds.total_time);
  EXPECT_LE(gds.total_time, hdn.total_time);
}

class OffloadCorrectness : public ::testing::TestWithParam<int> {};

TEST_P(OffloadCorrectness, NicOffloadedAllgatherMatchesReduction) {
  // The chained-trigger allgather (NIC forwards with no GPU involvement)
  // must produce the identical result.
  AllreduceConfig cfg = small(Strategy::kGpuTn, GetParam(), 16384);
  cfg.nic_offload_allgather = true;
  AllreduceResult res = run_allreduce(cfg);
  EXPECT_TRUE(res.correct) << "nodes=" << GetParam()
                           << " max_error=" << res.max_error;
}

INSTANTIATE_TEST_SUITE_P(Nodes, OffloadCorrectness,
                         ::testing::Values(2, 3, 4, 8));

TEST(Allreduce, NicOffloadDoesNotSlowDown) {
  AllreduceConfig base = small(Strategy::kGpuTn, 6, 64 * 1024);
  AllreduceConfig off = base;
  off.nic_offload_allgather = true;
  auto a = run_allreduce(base);
  auto b = run_allreduce(off);
  EXPECT_TRUE(a.correct);
  EXPECT_TRUE(b.correct);
  // Offload removes GPU poll+trigger from forwarding hops; it must not be
  // slower (allowing a small tolerance for scheduling noise).
  EXPECT_LE(b.total_time, a.total_time + sim::us(1));
}

TEST(Allreduce, RejectsSingleNode) {
  EXPECT_THROW(run_allreduce(small(Strategy::kCpu, 1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace gputn::workloads

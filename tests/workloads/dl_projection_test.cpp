#include "workloads/dl_projection.hpp"

#include <gtest/gtest.h>

#include "workloads/dl_traces.hpp"

namespace gputn::workloads {
namespace {

TEST(DlTraces, Table3ValuesMatchThePaper) {
  const auto& ws = table3_workloads();
  ASSERT_EQ(ws.size(), 6u);
  EXPECT_EQ(ws[0].name, "AlexNet");
  EXPECT_DOUBLE_EQ(ws[0].pct_blocked, 0.14);
  EXPECT_EQ(ws[0].reductions, 4672u);
  EXPECT_EQ(ws[1].name, "AN4 LSTM");
  EXPECT_DOUBLE_EQ(ws[1].pct_blocked, 0.50);
  EXPECT_EQ(ws[1].reductions, 131192u);
  EXPECT_EQ(ws[2].name, "CIFAR");
  EXPECT_DOUBLE_EQ(ws[2].pct_blocked, 0.04);
  EXPECT_EQ(ws[2].reductions, 939820u);
  EXPECT_EQ(ws[3].name, "Large Synth");
  EXPECT_DOUBLE_EQ(ws[3].pct_blocked, 0.28);
  EXPECT_EQ(ws[3].reductions, 52800u);
  EXPECT_EQ(ws[4].reductions, 900000u);
  EXPECT_EQ(ws[5].reductions, 900000u);
}

TEST(DlTraces, BucketWeightsFormDistributions) {
  for (const auto& w : table3_workloads()) {
    double sum = 0.0;
    for (double x : w.bucket_weight) {
      EXPECT_GE(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << w.name;
    EXPECT_GT(w.mean_bytes_per_reduction(), 0.0);
  }
}

TEST(DlTraces, FormatTable3ContainsAllWorkloads) {
  std::string t = format_table3();
  for (const auto& w : table3_workloads()) {
    EXPECT_NE(t.find(w.name), std::string::npos);
  }
}

TEST(DlProjection, LatencyModelMemoizesAndOrdersBySize) {
  cluster::SystemConfig sys = cluster::SystemConfig::table2();
  AllreduceLatencyModel model(sys, /*nodes=*/4);
  sim::Tick small = model.latency(Strategy::kGpuTn, 16 * 1024);
  sim::Tick large = model.latency(Strategy::kGpuTn, 256 * 1024);
  EXPECT_LT(small, large);
  // Memoized: second call returns the identical value.
  EXPECT_EQ(model.latency(Strategy::kGpuTn, 16 * 1024), small);
}

TEST(DlProjection, SmallReductionsFavorGpuTnOverHdn) {
  cluster::SystemConfig sys = cluster::SystemConfig::table2();
  AllreduceLatencyModel model(sys, 4);
  // On small reductions the 3us/step kernel boundary dominates: GPU-TN
  // must win by a wide margin.
  sim::Tick hdn = model.latency(Strategy::kHdn, 16 * 1024);
  sim::Tick tn = model.latency(Strategy::kGpuTn, 16 * 1024);
  EXPECT_LT(tn, hdn);
  EXPECT_GT(sim::to_us(hdn) / sim::to_us(tn), 1.5);
}

// Full projection over all six workloads on a 4-node cluster (8 nodes in
// the paper figure; 4 keeps this integration test quick — the bench runs
// the real configuration). Checks the Figure 11 orderings.
TEST(DlProjection, Figure11OrderingsHold) {
  DlProjectionConfig cfg;
  cfg.nodes = 4;
  auto projections =
      project_dl_workloads(cfg, cluster::SystemConfig::table2());
  ASSERT_EQ(projections.size(), 6u);

  double best_tn_over_hdn = 0.0;
  const DlProjection* cifar = nullptr;
  const DlProjection* an4 = nullptr;
  for (const auto& p : projections) {
    // Normalization sanity: the normalize_to strategy has speedup 1.
    EXPECT_NEAR(p.speedup.at(Strategy::kCpu), 1.0, 1e-12);
    // GPU-TN >= GDS >= HDN for every workload.
    EXPECT_GE(p.speedup.at(Strategy::kGpuTn),
              p.speedup.at(Strategy::kGds) - 1e-12)
        << p.workload.name;
    EXPECT_GE(p.speedup.at(Strategy::kGds),
              p.speedup.at(Strategy::kHdn) - 1e-12)
        << p.workload.name;
    // Compute time inference is consistent with Table 3's %Blocked.
    double b = p.comm_seconds.at(Strategy::kHdn) /
               (p.comm_seconds.at(Strategy::kHdn) + p.compute_seconds);
    EXPECT_NEAR(b, p.workload.pct_blocked, 1e-9) << p.workload.name;

    double tn_over_hdn = p.speedup.at(Strategy::kGpuTn) /
                         p.speedup.at(Strategy::kHdn);
    best_tn_over_hdn = std::max(best_tn_over_hdn, tn_over_hdn);
    if (p.workload.name == "CIFAR") cifar = &p;
    if (p.workload.name == "AN4 LSTM") an4 = &p;
  }
  ASSERT_NE(cifar, nullptr);
  ASSERT_NE(an4, nullptr);
  // Figure 11: AN4 LSTM benefits most, CIFAR least.
  double an4_gain = an4->speedup.at(Strategy::kGpuTn) /
                    an4->speedup.at(Strategy::kHdn);
  double cifar_gain = cifar->speedup.at(Strategy::kGpuTn) /
                      cifar->speedup.at(Strategy::kHdn);
  EXPECT_GT(an4_gain, cifar_gain);
  EXPECT_LT(cifar_gain, 1.10) << "CIFAR shows little improvement (paper)";
  EXPECT_GT(best_tn_over_hdn, 1.05) << "some workload gains noticeably";
}

}  // namespace
}  // namespace gputn::workloads

#include "workloads/broadcast.hpp"

#include <gtest/gtest.h>

namespace gputn::workloads {
namespace {

class BroadcastCorrectness
    : public ::testing::TestWithParam<std::tuple<BroadcastDrive, int>> {};

TEST_P(BroadcastCorrectness, EveryNodeGetsTheRootVector) {
  auto [drive, nodes] = GetParam();
  BroadcastConfig cfg;
  cfg.drive = drive;
  cfg.nodes = nodes;
  cfg.bytes = 64 * 1024;
  cfg.chunks = 8;
  BroadcastResult res = run_broadcast(cfg);
  EXPECT_TRUE(res.correct) << broadcast_drive_name(drive)
                           << " nodes=" << nodes;
  EXPECT_GT(res.total_time, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BroadcastCorrectness,
    ::testing::Combine(::testing::Values(BroadcastDrive::kHdn,
                                         BroadcastDrive::kGpuTn,
                                         BroadcastDrive::kNicChain),
                       ::testing::Values(2, 3, 4, 8)),
    [](const auto& info) {
      std::string n = broadcast_drive_name(std::get<0>(info.param));
      std::erase(n, '-');
      return n + "_n" + std::to_string(std::get<1>(info.param));
    });

TEST(Broadcast, PipelineBeatsUnchunked) {
  BroadcastConfig pipelined;
  pipelined.drive = BroadcastDrive::kNicChain;
  pipelined.nodes = 8;
  pipelined.bytes = 1 << 20;
  pipelined.chunks = 16;
  BroadcastConfig whole = pipelined;
  whole.chunks = 1;
  auto a = run_broadcast(pipelined);
  auto b = run_broadcast(whole);
  EXPECT_TRUE(a.correct);
  EXPECT_TRUE(b.correct);
  // Store-and-forward of the whole vector at every hop vs a pipeline.
  EXPECT_LT(a.total_time, b.total_time);
}

TEST(Broadcast, NicChainIsNoSlowerThanGpuPaced) {
  BroadcastConfig gpu;
  gpu.drive = BroadcastDrive::kGpuTn;
  gpu.nodes = 8;
  gpu.bytes = 256 * 1024;
  gpu.chunks = 16;
  BroadcastConfig chain = gpu;
  chain.drive = BroadcastDrive::kNicChain;
  auto a = run_broadcast(gpu);
  auto b = run_broadcast(chain);
  EXPECT_TRUE(a.correct);
  EXPECT_TRUE(b.correct);
  EXPECT_LE(b.total_time, a.total_time);
}

TEST(Broadcast, NicChainBeatsHdn) {
  // A pure-communication pipeline has no kernels for HDN to pay for, so
  // plain GPU-TN only ties it (its kernel-launch head start cancels the
  // faster per-hop forwarding). The NIC chain, however, removes the
  // per-hop host stack entirely and must win.
  BroadcastConfig hdn;
  hdn.drive = BroadcastDrive::kHdn;
  hdn.nodes = 8;
  hdn.bytes = 256 * 1024;
  hdn.chunks = 16;
  BroadcastConfig chain = hdn;
  chain.drive = BroadcastDrive::kNicChain;
  auto a = run_broadcast(hdn);
  auto b = run_broadcast(chain);
  EXPECT_TRUE(a.correct);
  EXPECT_TRUE(b.correct);
  EXPECT_LT(b.total_time, a.total_time);
}

TEST(Broadcast, RejectsBadConfigs) {
  BroadcastConfig cfg;
  cfg.nodes = 1;
  EXPECT_THROW(run_broadcast(cfg), std::invalid_argument);
  cfg.nodes = 4;
  cfg.bytes = 16;
  cfg.chunks = 64;  // more chunks than elements
  EXPECT_THROW(run_broadcast(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace gputn::workloads

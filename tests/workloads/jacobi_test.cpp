#include "workloads/jacobi.hpp"

#include <gtest/gtest.h>

namespace gputn::workloads {
namespace {

JacobiConfig small(Strategy s, int n = 16, int iters = 3) {
  JacobiConfig cfg;
  cfg.strategy = s;
  cfg.n = n;
  cfg.iterations = iters;
  cfg.num_wgs = 4;
  return cfg;
}

class JacobiCorrectness
    : public ::testing::TestWithParam<std::tuple<Strategy, int>> {};

TEST_P(JacobiCorrectness, MatchesScalarTorusReference) {
  auto [strategy, n] = GetParam();
  JacobiResult res = run_jacobi(small(strategy, n));
  EXPECT_TRUE(res.correct) << strategy_name(strategy) << " n=" << n;
  EXPECT_GT(res.total_time, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JacobiCorrectness,
    ::testing::Combine(::testing::Values(Strategy::kCpu, Strategy::kHdn,
                                         Strategy::kGds, Strategy::kGpuTn),
                       ::testing::Values(8, 16, 33)),
    [](const auto& info) {
      std::string n = strategy_name(std::get<0>(info.param));
      std::erase(n, '-');
      return n + "_n" + std::to_string(std::get<1>(info.param));
    });

TEST(Jacobi, AllStrategiesAgreeOnChecksum) {
  double reference_checksum = 0.0;
  bool first = true;
  for (Strategy s : kAllStrategies) {
    JacobiResult res = run_jacobi(small(s, 16, 4));
    ASSERT_TRUE(res.correct) << strategy_name(s);
    if (first) {
      reference_checksum = res.checksum;
      first = false;
    } else {
      EXPECT_DOUBLE_EQ(res.checksum, reference_checksum) << strategy_name(s);
    }
  }
}

TEST(Jacobi, SingleIterationWorks) {
  for (Strategy s : kAllStrategies) {
    JacobiResult res = run_jacobi(small(s, 12, 1));
    EXPECT_TRUE(res.correct) << strategy_name(s);
  }
}

TEST(Jacobi, GpuTnFasterThanHdnOnMediumGrids) {
  // Figure 9: GPU-TN > GDS > HDN on medium grids (kernel boundaries cost).
  auto hdn = run_jacobi(small(Strategy::kHdn, 64, 4));
  auto gds = run_jacobi(small(Strategy::kGds, 64, 4));
  auto tn = run_jacobi(small(Strategy::kGpuTn, 64, 4));
  EXPECT_LT(tn.per_iteration(), gds.per_iteration());
  EXPECT_LT(gds.per_iteration(), hdn.per_iteration());
}

TEST(Jacobi, CpuCompetitiveOnlyOnSmallGrids) {
  // Figure 9: the CPU wins at the far left (tiny grids), loses at the right.
  auto cpu_small = run_jacobi(small(Strategy::kCpu, 16, 2));
  auto hdn_small = run_jacobi(small(Strategy::kHdn, 16, 2));
  EXPECT_LT(cpu_small.per_iteration(), hdn_small.per_iteration());

  JacobiConfig big_cpu = small(Strategy::kCpu, 256, 4);
  big_cpu.num_wgs = 16;
  JacobiConfig big_tn = small(Strategy::kGpuTn, 256, 4);
  big_tn.num_wgs = 16;
  auto cpu_big = run_jacobi(big_cpu);
  auto tn_big = run_jacobi(big_tn);
  EXPECT_GT(cpu_big.per_iteration(), tn_big.per_iteration());
}

TEST(Jacobi, Deterministic) {
  auto a = run_jacobi(small(Strategy::kGpuTn, 16, 3));
  auto b = run_jacobi(small(Strategy::kGpuTn, 16, 3));
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.checksum, b.checksum);
}

TEST(Jacobi, OverlapVariantStaysCorrectAndIsFaster) {
  // The §5.3 overlap extension must not change the numerics, and on
  // medium grids it must actually help.
  JacobiConfig base;
  base.strategy = Strategy::kGpuTn;
  base.n = 64;
  base.iterations = 6;
  base.num_wgs = 8;
  JacobiConfig ovl = base;
  ovl.overlap = true;
  auto a = run_jacobi(base);
  auto b = run_jacobi(ovl);
  EXPECT_TRUE(a.correct);
  EXPECT_TRUE(b.correct);
  EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
  EXPECT_LT(b.per_iteration(), a.per_iteration());
}

TEST(Jacobi, OverlapIgnoredByOtherStrategies) {
  JacobiConfig cfg;
  cfg.strategy = Strategy::kHdn;
  cfg.n = 16;
  cfg.iterations = 2;
  cfg.overlap = true;  // only GPU-TN implements overlap; others ignore it
  auto res = run_jacobi(cfg);
  EXPECT_TRUE(res.correct);
}

TEST(Jacobi, NoMemoryModelHazards) {
  // Every strategy fences before triggering; the hazard detector must stay
  // quiet in a correct implementation.
  JacobiResult res = run_jacobi(small(Strategy::kGpuTn, 16, 3));
  EXPECT_TRUE(res.correct);
}

}  // namespace
}  // namespace gputn::workloads

// Workload-level tests for the pluggable fabric (topology x routing x
// credits through workloads::RunOptions).
//
// The net/ unit tests pin the contracts; these tests pin what the paper's
// workloads observe: the star override is bit-identical to the seed golden,
// every topology carries a full allreduce correctly under both strategies,
// sweeps over fabrics stay bit-identical across --jobs, and adaptive
// routing + finite credits never cost determinism.
#include <gtest/gtest.h>

#include "exp/runner.hpp"
#include "exp/sweeps.hpp"
#include "workloads/allreduce.hpp"
#include "workloads/jacobi.hpp"

namespace gputn::workloads {
namespace {

AllreduceConfig small_allreduce(const std::string& topology,
                                Strategy s = Strategy::kGpuTn,
                                int nodes = 4) {
  AllreduceConfig cfg;
  cfg.strategy = s;
  cfg.nodes = nodes;
  cfg.elements = 16 * 1024;
  cfg.topology = topology;
  return cfg;
}

TEST(FabricWorkloads, ExplicitStarMatchesTheSeedGolden) {
  // --topology star must be a spelling of the default, not a new code path:
  // same golden total time and identical stats as the untouched config.
  AllreduceConfig plain = small_allreduce("");
  plain.elements = 65536;
  AllreduceResult base = run_allreduce(plain);
  AllreduceConfig star = plain;
  star.topology = "star";
  star.routing = "deterministic";
  AllreduceResult r = run_allreduce(star);
  ASSERT_TRUE(base.correct);
  ASSERT_TRUE(r.correct);
  EXPECT_EQ(base.total_time, 36134921);  // the seed golden, re-pinned
  EXPECT_EQ(r.total_time, base.total_time);
  EXPECT_EQ(r.stats_json(), base.stats_json());
}

TEST(FabricWorkloads, EveryTopologyCarriesAllreduceCorrectly) {
  for (const char* topo :
       {"fat-tree:k=4", "torus:2x2", "dragonfly:a=2,h=2,p=2"}) {
    for (Strategy s : {Strategy::kCpu, Strategy::kGpuTn}) {
      AllreduceResult r = run_allreduce(small_allreduce(topo, s));
      EXPECT_TRUE(r.correct) << topo << " " << strategy_name(s);
      EXPECT_EQ(r.max_error, 0.0) << topo;
      EXPECT_GT(r.total_time, 0) << topo;
    }
  }
}

TEST(FabricWorkloads, JacobiRunsOnAMultiHopFabric) {
  JacobiConfig cfg;
  cfg.strategy = Strategy::kGpuTn;
  cfg.n = 32;
  cfg.iterations = 3;
  cfg.topology = "torus:2x2";
  JacobiResult r = run_jacobi(cfg);
  ASSERT_TRUE(r.correct);
  // The 2x2 torus needs real inter-switch hops (diagonal neighbors are two
  // hops), so the halo exchange must take longer than the one-hop star.
  JacobiConfig star = cfg;
  star.topology = "";
  EXPECT_GT(r.total_time, run_jacobi(star).total_time);
}

TEST(FabricWorkloads, MultiHopTopologiesCostMoreThanTheStar) {
  sim::Tick star = run_allreduce(small_allreduce("star")).total_time;
  sim::Tick fat = run_allreduce(small_allreduce("fat-tree:k=4")).total_time;
  EXPECT_GT(fat, star);  // ring neighbors cross 3-5 switches on a fat-tree
}

TEST(FabricWorkloads, AdaptiveRoutingWithCreditsStaysDeterministic) {
  AllreduceConfig cfg = small_allreduce("fat-tree:k=4");
  cfg.routing = "adaptive";
  cfg.credits = 4;
  AllreduceResult a = run_allreduce(cfg);
  AllreduceResult b = run_allreduce(cfg);
  ASSERT_TRUE(a.correct);
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.stats_json(), b.stats_json());
}

TEST(FabricWorkloads, TightCreditsThrottleButNeverBreakTheWorkload) {
  AllreduceConfig free_flow = small_allreduce("fat-tree:k=4");
  AllreduceConfig tight = free_flow;
  tight.credits = 1;
  AllreduceResult a = run_allreduce(free_flow);
  AllreduceResult b = run_allreduce(tight);
  ASSERT_TRUE(a.correct);
  ASSERT_TRUE(b.correct);
  EXPECT_GE(b.total_time, a.total_time);
  // The stalls are visible in the exported stats when they happened.
  EXPECT_GT(b.net_stats.counter_value("net.credit_stalls") +
                b.net_stats.counter_value("net.switch.packets"),
            0u);
}

TEST(FabricWorkloads, FabricSweepIsBitIdenticalAcrossJobs) {
  exp::Plan plan = exp::fabric_scale_plan({4, 8}, {"star", "fat-tree:k=4"},
                                          /*elements=*/16 * 1024);
  ASSERT_EQ(plan.size(), 8u);  // 2 node counts x 2 topologies x 2 strategies
  exp::RunSummary s1 = exp::Runner(1).run(plan);
  exp::RunSummary s2 = exp::Runner(2).run(plan);
  exp::RunSummary s4 = exp::Runner(4).run(plan);
  EXPECT_EQ(s1.failures, 0u);
  EXPECT_TRUE(s1.all_correct());
  std::string j1 = exp::results_json(s1);
  EXPECT_EQ(j1, exp::results_json(s2));
  EXPECT_EQ(j1, exp::results_json(s4));
}

TEST(FabricWorkloads, AdaptiveFabricSweepIsBitIdenticalAcrossJobs) {
  // The stronger claim: even with queue-depth-driven routing and finite
  // credits, runs are isolated simulations, so parallel execution cannot
  // perturb a single timestamp.
  exp::Plan plan = exp::fabric_scale_plan({4}, {"fat-tree:k=4", "torus:2x2"},
                                          /*elements=*/16 * 1024, "adaptive");
  exp::RunSummary s1 = exp::Runner(1).run(plan);
  exp::RunSummary s4 = exp::Runner(4).run(plan);
  EXPECT_EQ(s1.failures, 0u);
  EXPECT_EQ(exp::results_json(s1), exp::results_json(s4));
}

TEST(FabricWorkloads, BadTopologySpecFailsLoudly) {
  AllreduceConfig cfg = small_allreduce("moebius:k=4");
  EXPECT_THROW(run_allreduce(cfg), std::invalid_argument);
  AllreduceConfig routing = small_allreduce("star");
  routing.routing = "chaotic";
  EXPECT_THROW(run_allreduce(routing), std::invalid_argument);
}

}  // namespace
}  // namespace gputn::workloads

#include "workloads/microbench.hpp"

#include <gtest/gtest.h>

namespace gputn::workloads {
namespace {

class MicrobenchAllStrategies : public ::testing::TestWithParam<Strategy> {};

TEST_P(MicrobenchAllStrategies, DeliversThePayload) {
  MicrobenchResult res = run_microbench(GetParam());
  EXPECT_TRUE(res.correct) << strategy_name(GetParam());
  EXPECT_GT(res.target_completion, 0);
  EXPECT_GT(res.initiator_completion, 0);
}

TEST_P(MicrobenchAllStrategies, IsDeterministic) {
  MicrobenchResult a = run_microbench(GetParam());
  MicrobenchResult b = run_microbench(GetParam());
  EXPECT_EQ(a.target_completion, b.target_completion);
  EXPECT_EQ(a.initiator_completion, b.initiator_completion);
}

INSTANTIATE_TEST_SUITE_P(Strategies, MicrobenchAllStrategies,
                         ::testing::Values(Strategy::kCpu, Strategy::kHdn,
                                           Strategy::kGds, Strategy::kGpuTn,
                                           Strategy::kGhn, Strategy::kGnn),
                         [](const auto& info) {
                           std::string n = strategy_name(info.param);
                           std::erase(n, '-');
                           return n;
                         });

TEST(Microbench, Figure8OrderingHolds) {
  auto hdn = run_microbench(Strategy::kHdn);
  auto gds = run_microbench(Strategy::kGds);
  auto tn = run_microbench(Strategy::kGpuTn);
  // §5.2: GPU-TN beats GDS beats HDN on end-to-end latency.
  EXPECT_LT(tn.end_to_end(), gds.end_to_end());
  EXPECT_LT(gds.end_to_end(), hdn.end_to_end());
}

TEST(Microbench, Figure8UpliftMagnitudes) {
  auto hdn = run_microbench(Strategy::kHdn);
  auto gds = run_microbench(Strategy::kGds);
  auto tn = run_microbench(Strategy::kGpuTn);
  double vs_hdn = 1.0 - sim::to_us(tn.end_to_end()) / sim::to_us(hdn.end_to_end());
  double vs_gds = 1.0 - sim::to_us(tn.end_to_end()) / sim::to_us(gds.end_to_end());
  // Paper: ~35% over HDN, ~25% over GDS. Accept the right neighbourhood.
  EXPECT_GT(vs_hdn, 0.25);
  EXPECT_LT(vs_hdn, 0.50);
  EXPECT_GT(vs_gds, 0.15);
  EXPECT_LT(vs_gds, 0.40);
}

TEST(Microbench, GpuTnTargetCompletesBeforeInitiatorKernelEnds) {
  // The §5.2 observation: with intra-kernel networking, "the target node
  // receives the network data before the kernel on the initiator
  // completes."
  auto tn = run_microbench(Strategy::kGpuTn);
  EXPECT_LT(tn.target_completion, tn.initiator_completion);
  // Kernel-boundary strategies cannot do this.
  auto gds = run_microbench(Strategy::kGds);
  EXPECT_GT(gds.target_completion, gds.initiator_completion);
}

TEST(Microbench, PhaseDecompositionIsContiguousForGpuStrategies) {
  for (Strategy s : {Strategy::kHdn, Strategy::kGds, Strategy::kGpuTn}) {
    auto res = run_microbench(s);
    ASSERT_GE(res.initiator_phases.size(), 3u) << strategy_name(s);
    for (std::size_t i = 1; i < res.initiator_phases.size(); ++i) {
      EXPECT_GE(res.initiator_phases[i].begin,
                res.initiator_phases[i - 1].end - sim::ns(1))
          << strategy_name(s);
    }
    // Launch and teardown are the calibrated 1.5 us each (§5.1).
    EXPECT_NEAR(res.initiator_phases[0].us(), 1.5, 0.01);
  }
}

TEST(Microbench, Table1TaxonomyOrdering) {
  // §5.1.1's qualitative comparison, quantified: GPU-TN beats GHN (no
  // critical-path CPU stack), GHN beats GNN (CPU builds packets faster
  // than a GPU lane), and all intra-kernel schemes beat kernel-boundary
  // ones on this fine-grained message.
  auto tn = run_microbench(Strategy::kGpuTn);
  auto ghn = run_microbench(Strategy::kGhn);
  auto gnn = run_microbench(Strategy::kGnn);
  auto gds = run_microbench(Strategy::kGds);
  EXPECT_LT(tn.end_to_end(), ghn.end_to_end());
  EXPECT_LT(ghn.end_to_end(), gnn.end_to_end());
  EXPECT_LT(gnn.end_to_end(), gds.end_to_end());
}

TEST(Microbench, IntraKernelStrategiesDeliverBeforeKernelEnd) {
  for (Strategy s : {Strategy::kGpuTn, Strategy::kGhn, Strategy::kGnn}) {
    auto res = run_microbench(s);
    EXPECT_LT(res.target_completion, res.initiator_completion)
        << strategy_name(s);
  }
}

TEST(Microbench, GhnBurnsAHelperThread) {
  // The cost Table 1 lists for GPU Host Networking: a dedicated service
  // thread polls on the host for the whole run.
  auto res = run_microbench(Strategy::kGhn);
  EXPECT_TRUE(res.correct);
}

TEST(Microbench, KernelLaunchDominatesGpuStrategies) {
  // Figure 8: most of the initiator time is kernel launch/teardown, which
  // is precisely the motivation for intra-kernel networking.
  auto tn = run_microbench(Strategy::kGpuTn);
  sim::Tick overhead = 0, kernel = 0;
  for (const auto& ph : tn.initiator_phases) {
    if (ph.label == "launch" || ph.label == "teardown") {
      overhead += ph.end - ph.begin;
    } else if (ph.label == "kernel") {
      kernel += ph.end - ph.begin;
    }
  }
  EXPECT_GT(overhead, 4 * kernel);
}

}  // namespace
}  // namespace gputn::workloads

// Golden regression test for the event engine.
//
// The values below are exact simulated times and network counters captured
// from the original priority_queue engine (seed commit) on the fig09/fig10
// workload configurations. The calendar-queue rewrite must be an
// implementation swap only: every timestamp, every counter, and every
// reduction result has to come out bit-identical. If a change to the engine
// (or to anything on the hot path) moves one of these numbers, it changed
// observable event ordering — that is a correctness bug, not a tolerance
// issue, which is why every comparison here is exact equality.
// The same exactness contract extends to the sharded parallel engine: the
// Shards* tests below run each workload at --shards 1/2/4 and require every
// result, checksum, stats export and flight dump to be bit-identical (only
// the util.shard*/util.engine* telemetry, a function of the partition by
// construction, is stripped before comparing).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/flight.hpp"
#include "serve/serve.hpp"
#include "workloads/allreduce.hpp"
#include "workloads/jacobi.hpp"
#include "workloads/microbench.hpp"

namespace gputn::workloads {
namespace {

struct NetGolden {
  std::uint64_t messages;
  std::uint64_t bytes;
  std::uint64_t switch_packets;
  std::uint64_t link_bytes;
  std::uint64_t link_packets;
  std::uint64_t e2e_count;
  double e2e_sum;
};

void expect_net(const sim::StatRegistry& s, const NetGolden& g) {
  EXPECT_EQ(s.counter_value("net.messages"), g.messages);
  EXPECT_EQ(s.counter_value("net.bytes"), g.bytes);
  EXPECT_EQ(s.counter_value("net.switch.packets"), g.switch_packets);
  EXPECT_EQ(s.counter_value("net.link.bytes"), g.link_bytes);
  EXPECT_EQ(s.counter_value("net.link.packets"), g.link_packets);
  const auto* h = s.find_histogram("lat.end_to_end");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), g.e2e_count);
  EXPECT_EQ(h->summary().sum(), g.e2e_sum);
}

TEST(Golden, JacobiGpuTnFig09) {
  JacobiConfig cfg;
  cfg.strategy = Strategy::kGpuTn;
  cfg.n = 32;
  cfg.iterations = 3;
  JacobiResult r = run_jacobi(cfg);
  ASSERT_TRUE(r.correct);
  EXPECT_EQ(r.total_time, 10921398);
  EXPECT_EQ(r.checksum, 506.31523840206148);
  expect_net(r.net_stats, {48, 15360, 48, 32256, 96, 48, 27860.0});
}

TEST(Golden, JacobiHdnFig09) {
  JacobiConfig cfg;
  cfg.strategy = Strategy::kHdn;
  cfg.n = 32;
  cfg.iterations = 3;
  JacobiResult r = run_jacobi(cfg);
  ASSERT_TRUE(r.correct);
  EXPECT_EQ(r.total_time, 13851398);
  expect_net(r.net_stats, {48, 15360, 48, 32256, 96, 48, 26772.0});
}

TEST(Golden, AllreduceGpuTnFig10) {
  AllreduceConfig cfg;
  cfg.strategy = Strategy::kGpuTn;
  cfg.nodes = 4;
  cfg.elements = 65536;
  AllreduceResult r = run_allreduce(cfg);
  ASSERT_TRUE(r.correct);
  EXPECT_EQ(r.max_error, 0.0);
  EXPECT_EQ(r.total_time, 36134921);
  expect_net(r.net_stats, {192, 1585152, 576, 3188736, 1152, 192, 842612.0});
}

TEST(Golden, AllreduceGdsFig10) {
  AllreduceConfig cfg;
  cfg.strategy = Strategy::kGds;
  cfg.nodes = 4;
  cfg.elements = 65536;
  AllreduceResult r = run_allreduce(cfg);
  ASSERT_TRUE(r.correct);
  EXPECT_EQ(r.total_time, 53340000);
  expect_net(r.net_stats, {24, 1574400, 408, 3161856, 816, 24, 159936.0});
}

TEST(Golden, MicrobenchGpuTnTable1) {
  MicrobenchResult r = run_microbench(Strategy::kGpuTn);
  EXPECT_EQ(r.target_completion, 2940000);
  EXPECT_EQ(r.initiator_completion, 3980000);
}

/// Stats JSON with the engine's partition-dependent telemetry removed —
/// everything else must match bit-for-bit across shard counts.
std::string strip_shard_keys(const std::string& json) {
  std::istringstream in(json);
  std::string out, line;
  while (std::getline(in, line)) {
    if (line.find("\"util.shard") != std::string::npos ||
        line.find("\"util.engine") != std::string::npos) {
      continue;
    }
    out += line;
    out += '\n';
  }
  return out;
}

/// One run's full observable surface: results + stats + flight dump.
struct RunImage {
  sim::Tick total_time = 0;
  std::string stats;
  std::string flight;
};

template <typename Cfg, typename Run>
RunImage image_at(Cfg cfg, int shards, Run run) {
  obs::FlightRecorder rec{obs::FlightConfig{}};
  cfg.shards = shards;
  cfg.flight = &rec;
  auto r = run(cfg);
  EXPECT_TRUE(r.correct) << "shards=" << shards;
  RunImage img;
  img.total_time = r.total_time;
  img.stats = strip_shard_keys(r.stats_json());
  img.flight = rec.json();
  return img;
}

void expect_identical(const RunImage& base, const RunImage& img, int shards) {
  EXPECT_EQ(base.total_time, img.total_time) << "shards=" << shards;
  EXPECT_EQ(base.stats, img.stats) << "shards=" << shards;
  EXPECT_EQ(base.flight, img.flight) << "shards=" << shards;
}

TEST(Golden, ShardsJacobiFig09BitIdentical) {
  JacobiConfig cfg;
  cfg.strategy = Strategy::kGpuTn;
  cfg.n = 32;
  cfg.iterations = 3;
  double checksum[3];
  RunImage base;
  int i = 0;
  for (int s : {1, 2, 4}) {
    obs::FlightRecorder rec{obs::FlightConfig{}};
    JacobiConfig c = cfg;
    c.shards = s;
    c.flight = &rec;
    JacobiResult r = run_jacobi(c);
    ASSERT_TRUE(r.correct) << "shards=" << s;
    checksum[i++] = r.checksum;
    EXPECT_EQ(r.total_time, 10921398) << "shards=" << s;
    RunImage img{r.total_time, strip_shard_keys(r.stats_json()), rec.json()};
    if (s == 1) {
      base = img;
    } else {
      expect_identical(base, img, s);
    }
  }
  EXPECT_EQ(checksum[0], 506.31523840206148);
  EXPECT_EQ(checksum[1], checksum[0]);
  EXPECT_EQ(checksum[2], checksum[0]);
}

TEST(Golden, ShardsAllreduceFig10BitIdentical) {
  AllreduceConfig cfg;
  cfg.strategy = Strategy::kGpuTn;
  cfg.nodes = 4;
  cfg.elements = 65536;
  RunImage base = image_at(cfg, 1, [](const AllreduceConfig& c) {
    return run_allreduce(c);
  });
  EXPECT_EQ(base.total_time, 36134921);
  for (int s : {2, 4}) {
    RunImage img = image_at(cfg, s, [](const AllreduceConfig& c) {
      return run_allreduce(c);
    });
    expect_identical(base, img, s);
  }
}

TEST(Golden, ShardsFatTreeAllreduceBitIdentical) {
  // Multi-switch fabric: the union-find trunk partition plus both flavors
  // of cross-shard host edge (node->switch and switch->node) are on the
  // path, at a shard count that does not divide the switch components.
  AllreduceConfig cfg;
  cfg.strategy = Strategy::kGpuTn;
  cfg.topology = "fat-tree:k=4";
  cfg.nodes = 8;
  cfg.elements = 4096;
  RunImage base = image_at(cfg, 1, [](const AllreduceConfig& c) {
    return run_allreduce(c);
  });
  for (int s : {2, 4}) {
    RunImage img = image_at(cfg, s, [](const AllreduceConfig& c) {
      return run_allreduce(c);
    });
    expect_identical(base, img, s);
  }
}

TEST(Golden, ShardsServeBitIdentical) {
  // The serving workload exercises the engine's setup-release barrier
  // (step(next_time()) single-tick windows) on top of the usual traffic.
  serve::ServeConfig cfg;
  cfg.requests = 40;
  serve::ServeResult base_r;
  RunImage base;
  for (int s : {1, 2, 4}) {
    obs::FlightRecorder rec{obs::FlightConfig{}};
    serve::ServeConfig c = cfg;
    c.shards = s;
    c.flight = &rec;
    serve::ServeResult r = serve::run_serve(c);
    ASSERT_TRUE(r.correct) << "shards=" << s;
    RunImage img{r.total_time, strip_shard_keys(r.stats_json()), rec.json()};
    if (s == 1) {
      base = img;
      base_r = r;
    } else {
      expect_identical(base, img, s);
      EXPECT_EQ(r.setup_time, base_r.setup_time) << "shards=" << s;
      EXPECT_EQ(r.requests_total, base_r.requests_total) << "shards=" << s;
    }
  }
}

}  // namespace
}  // namespace gputn::workloads

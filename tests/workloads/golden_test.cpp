// Golden regression test for the event engine.
//
// The values below are exact simulated times and network counters captured
// from the original priority_queue engine (seed commit) on the fig09/fig10
// workload configurations. The calendar-queue rewrite must be an
// implementation swap only: every timestamp, every counter, and every
// reduction result has to come out bit-identical. If a change to the engine
// (or to anything on the hot path) moves one of these numbers, it changed
// observable event ordering — that is a correctness bug, not a tolerance
// issue, which is why every comparison here is exact equality.
#include <gtest/gtest.h>

#include "workloads/allreduce.hpp"
#include "workloads/jacobi.hpp"
#include "workloads/microbench.hpp"

namespace gputn::workloads {
namespace {

struct NetGolden {
  std::uint64_t messages;
  std::uint64_t bytes;
  std::uint64_t switch_packets;
  std::uint64_t link_bytes;
  std::uint64_t link_packets;
  std::uint64_t e2e_count;
  double e2e_sum;
};

void expect_net(const sim::StatRegistry& s, const NetGolden& g) {
  EXPECT_EQ(s.counter_value("net.messages"), g.messages);
  EXPECT_EQ(s.counter_value("net.bytes"), g.bytes);
  EXPECT_EQ(s.counter_value("net.switch.packets"), g.switch_packets);
  EXPECT_EQ(s.counter_value("net.link.bytes"), g.link_bytes);
  EXPECT_EQ(s.counter_value("net.link.packets"), g.link_packets);
  const auto* h = s.find_histogram("lat.end_to_end");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), g.e2e_count);
  EXPECT_EQ(h->summary().sum(), g.e2e_sum);
}

TEST(Golden, JacobiGpuTnFig09) {
  JacobiConfig cfg;
  cfg.strategy = Strategy::kGpuTn;
  cfg.n = 32;
  cfg.iterations = 3;
  JacobiResult r = run_jacobi(cfg);
  ASSERT_TRUE(r.correct);
  EXPECT_EQ(r.total_time, 10921398);
  EXPECT_EQ(r.checksum, 506.31523840206148);
  expect_net(r.net_stats, {48, 15360, 48, 32256, 96, 48, 27860.0});
}

TEST(Golden, JacobiHdnFig09) {
  JacobiConfig cfg;
  cfg.strategy = Strategy::kHdn;
  cfg.n = 32;
  cfg.iterations = 3;
  JacobiResult r = run_jacobi(cfg);
  ASSERT_TRUE(r.correct);
  EXPECT_EQ(r.total_time, 13851398);
  expect_net(r.net_stats, {48, 15360, 48, 32256, 96, 48, 26772.0});
}

TEST(Golden, AllreduceGpuTnFig10) {
  AllreduceConfig cfg;
  cfg.strategy = Strategy::kGpuTn;
  cfg.nodes = 4;
  cfg.elements = 65536;
  AllreduceResult r = run_allreduce(cfg);
  ASSERT_TRUE(r.correct);
  EXPECT_EQ(r.max_error, 0.0);
  EXPECT_EQ(r.total_time, 36134921);
  expect_net(r.net_stats, {192, 1585152, 576, 3188736, 1152, 192, 842612.0});
}

TEST(Golden, AllreduceGdsFig10) {
  AllreduceConfig cfg;
  cfg.strategy = Strategy::kGds;
  cfg.nodes = 4;
  cfg.elements = 65536;
  AllreduceResult r = run_allreduce(cfg);
  ASSERT_TRUE(r.correct);
  EXPECT_EQ(r.total_time, 53340000);
  expect_net(r.net_stats, {24, 1574400, 408, 3161856, 816, 24, 159936.0});
}

TEST(Golden, MicrobenchGpuTnTable1) {
  MicrobenchResult r = run_microbench(Strategy::kGpuTn);
  EXPECT_EQ(r.target_completion, 2940000);
  EXPECT_EQ(r.initiator_completion, 3980000);
}

}  // namespace
}  // namespace gputn::workloads

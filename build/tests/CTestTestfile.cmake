# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/nic_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/gpu_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/rt_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")

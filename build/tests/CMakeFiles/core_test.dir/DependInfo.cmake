
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/chains_test.cpp" "tests/CMakeFiles/core_test.dir/core/chains_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/chains_test.cpp.o.d"
  "/root/repo/tests/core/dynamic_test.cpp" "tests/CMakeFiles/core_test.dir/core/dynamic_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/dynamic_test.cpp.o.d"
  "/root/repo/tests/core/fuzz_test.cpp" "tests/CMakeFiles/core_test.dir/core/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/fuzz_test.cpp.o.d"
  "/root/repo/tests/core/trigger_table_test.cpp" "tests/CMakeFiles/core_test.dir/core/trigger_table_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/trigger_table_test.cpp.o.d"
  "/root/repo/tests/core/triggered_test.cpp" "tests/CMakeFiles/core_test.dir/core/triggered_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/triggered_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gputn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

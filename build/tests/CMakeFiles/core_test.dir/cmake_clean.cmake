file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/chains_test.cpp.o"
  "CMakeFiles/core_test.dir/core/chains_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/dynamic_test.cpp.o"
  "CMakeFiles/core_test.dir/core/dynamic_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/fuzz_test.cpp.o"
  "CMakeFiles/core_test.dir/core/fuzz_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/trigger_table_test.cpp.o"
  "CMakeFiles/core_test.dir/core/trigger_table_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/triggered_test.cpp.o"
  "CMakeFiles/core_test.dir/core/triggered_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

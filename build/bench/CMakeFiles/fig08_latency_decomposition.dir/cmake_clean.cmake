file(REMOVE_RECURSE
  "CMakeFiles/fig08_latency_decomposition.dir/fig08_latency_decomposition.cpp.o"
  "CMakeFiles/fig08_latency_decomposition.dir/fig08_latency_decomposition.cpp.o.d"
  "fig08_latency_decomposition"
  "fig08_latency_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_latency_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

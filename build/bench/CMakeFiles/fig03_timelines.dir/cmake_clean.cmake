file(REMOVE_RECURSE
  "CMakeFiles/fig03_timelines.dir/fig03_timelines.cpp.o"
  "CMakeFiles/fig03_timelines.dir/fig03_timelines.cpp.o.d"
  "fig03_timelines"
  "fig03_timelines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_timelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

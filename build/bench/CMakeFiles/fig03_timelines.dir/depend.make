# Empty dependencies file for fig03_timelines.
# This may be replaced when dependencies are built.

# Empty dependencies file for abl_coll_offload.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/abl_coll_offload.dir/abl_coll_offload.cpp.o"
  "CMakeFiles/abl_coll_offload.dir/abl_coll_offload.cpp.o.d"
  "abl_coll_offload"
  "abl_coll_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_coll_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

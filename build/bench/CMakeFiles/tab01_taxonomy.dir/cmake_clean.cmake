file(REMOVE_RECURSE
  "CMakeFiles/tab01_taxonomy.dir/tab01_taxonomy.cpp.o"
  "CMakeFiles/tab01_taxonomy.dir/tab01_taxonomy.cpp.o.d"
  "tab01_taxonomy"
  "tab01_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

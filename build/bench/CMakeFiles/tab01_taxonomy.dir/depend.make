# Empty dependencies file for tab01_taxonomy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/abl_relaxed_sync.dir/abl_relaxed_sync.cpp.o"
  "CMakeFiles/abl_relaxed_sync.dir/abl_relaxed_sync.cpp.o.d"
  "abl_relaxed_sync"
  "abl_relaxed_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_relaxed_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

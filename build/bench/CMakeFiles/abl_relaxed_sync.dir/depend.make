# Empty dependencies file for abl_relaxed_sync.
# This may be replaced when dependencies are built.

# Empty dependencies file for tab02_config.
# This may be replaced when dependencies are built.

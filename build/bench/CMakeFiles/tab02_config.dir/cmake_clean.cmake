file(REMOVE_RECURSE
  "CMakeFiles/tab02_config.dir/tab02_config.cpp.o"
  "CMakeFiles/tab02_config.dir/tab02_config.cpp.o.d"
  "tab02_config"
  "tab02_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

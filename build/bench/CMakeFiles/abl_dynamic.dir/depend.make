# Empty dependencies file for abl_dynamic.
# This may be replaced when dependencies are built.

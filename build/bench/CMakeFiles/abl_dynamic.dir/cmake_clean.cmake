file(REMOVE_RECURSE
  "CMakeFiles/abl_dynamic.dir/abl_dynamic.cpp.o"
  "CMakeFiles/abl_dynamic.dir/abl_dynamic.cpp.o.d"
  "abl_dynamic"
  "abl_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/tab03_dl_workloads.dir/tab03_dl_workloads.cpp.o"
  "CMakeFiles/tab03_dl_workloads.dir/tab03_dl_workloads.cpp.o.d"
  "tab03_dl_workloads"
  "tab03_dl_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_dl_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for tab03_dl_workloads.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig11_deep_learning.dir/fig11_deep_learning.cpp.o"
  "CMakeFiles/fig11_deep_learning.dir/fig11_deep_learning.cpp.o.d"
  "fig11_deep_learning"
  "fig11_deep_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_deep_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for abl_nic_offload.
# This may be replaced when dependencies are built.

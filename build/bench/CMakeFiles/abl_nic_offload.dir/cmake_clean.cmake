file(REMOVE_RECURSE
  "CMakeFiles/abl_nic_offload.dir/abl_nic_offload.cpp.o"
  "CMakeFiles/abl_nic_offload.dir/abl_nic_offload.cpp.o.d"
  "abl_nic_offload"
  "abl_nic_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_nic_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

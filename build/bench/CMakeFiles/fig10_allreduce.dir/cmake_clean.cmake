file(REMOVE_RECURSE
  "CMakeFiles/fig10_allreduce.dir/fig10_allreduce.cpp.o"
  "CMakeFiles/fig10_allreduce.dir/fig10_allreduce.cpp.o.d"
  "fig10_allreduce"
  "fig10_allreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig10_allreduce.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for abl_launch_sweep.
# This may be replaced when dependencies are built.

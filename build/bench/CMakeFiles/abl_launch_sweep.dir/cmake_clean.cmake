file(REMOVE_RECURSE
  "CMakeFiles/abl_launch_sweep.dir/abl_launch_sweep.cpp.o"
  "CMakeFiles/abl_launch_sweep.dir/abl_launch_sweep.cpp.o.d"
  "abl_launch_sweep"
  "abl_launch_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_launch_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

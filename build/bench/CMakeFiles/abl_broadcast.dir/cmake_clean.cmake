file(REMOVE_RECURSE
  "CMakeFiles/abl_broadcast.dir/abl_broadcast.cpp.o"
  "CMakeFiles/abl_broadcast.dir/abl_broadcast.cpp.o.d"
  "abl_broadcast"
  "abl_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for abl_broadcast.
# This may be replaced when dependencies are built.

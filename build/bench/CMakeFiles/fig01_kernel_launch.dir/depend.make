# Empty dependencies file for fig01_kernel_launch.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig01_kernel_launch.dir/fig01_kernel_launch.cpp.o"
  "CMakeFiles/fig01_kernel_launch.dir/fig01_kernel_launch.cpp.o.d"
  "fig01_kernel_launch"
  "fig01_kernel_launch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_kernel_launch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

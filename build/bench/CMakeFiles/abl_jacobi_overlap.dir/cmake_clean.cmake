file(REMOVE_RECURSE
  "CMakeFiles/abl_jacobi_overlap.dir/abl_jacobi_overlap.cpp.o"
  "CMakeFiles/abl_jacobi_overlap.dir/abl_jacobi_overlap.cpp.o.d"
  "abl_jacobi_overlap"
  "abl_jacobi_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_jacobi_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

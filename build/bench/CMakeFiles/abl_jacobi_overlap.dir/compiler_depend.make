# Empty compiler generated dependencies file for abl_jacobi_overlap.
# This may be replaced when dependencies are built.

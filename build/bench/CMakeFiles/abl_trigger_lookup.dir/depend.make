# Empty dependencies file for abl_trigger_lookup.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/abl_trigger_lookup.dir/abl_trigger_lookup.cpp.o"
  "CMakeFiles/abl_trigger_lookup.dir/abl_trigger_lookup.cpp.o.d"
  "abl_trigger_lookup"
  "abl_trigger_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_trigger_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

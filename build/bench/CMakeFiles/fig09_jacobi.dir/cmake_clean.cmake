file(REMOVE_RECURSE
  "CMakeFiles/fig09_jacobi.dir/fig09_jacobi.cpp.o"
  "CMakeFiles/fig09_jacobi.dir/fig09_jacobi.cpp.o.d"
  "fig09_jacobi"
  "fig09_jacobi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_jacobi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig09_jacobi.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for gputn_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/gputn_cli.dir/gputn_cli.cpp.o"
  "CMakeFiles/gputn_cli.dir/gputn_cli.cpp.o.d"
  "gputn"
  "gputn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gputn_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/jacobi_halo.dir/jacobi_halo.cpp.o"
  "CMakeFiles/jacobi_halo.dir/jacobi_halo.cpp.o.d"
  "jacobi_halo"
  "jacobi_halo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jacobi_halo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

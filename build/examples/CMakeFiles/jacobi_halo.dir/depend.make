# Empty dependencies file for jacobi_halo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/allreduce_ring.dir/allreduce_ring.cpp.o"
  "CMakeFiles/allreduce_ring.dir/allreduce_ring.cpp.o.d"
  "allreduce_ring"
  "allreduce_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allreduce_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

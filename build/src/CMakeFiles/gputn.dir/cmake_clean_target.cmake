file(REMOVE_RECURSE
  "libgputn.a"
)

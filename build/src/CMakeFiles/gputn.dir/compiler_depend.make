# Empty compiler generated dependencies file for gputn.
# This may be replaced when dependencies are built.

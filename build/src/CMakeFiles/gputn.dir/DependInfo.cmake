
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster.cpp" "src/CMakeFiles/gputn.dir/cluster/cluster.cpp.o" "gcc" "src/CMakeFiles/gputn.dir/cluster/cluster.cpp.o.d"
  "/root/repo/src/cluster/config.cpp" "src/CMakeFiles/gputn.dir/cluster/config.cpp.o" "gcc" "src/CMakeFiles/gputn.dir/cluster/config.cpp.o.d"
  "/root/repo/src/core/trigger_table.cpp" "src/CMakeFiles/gputn.dir/core/trigger_table.cpp.o" "gcc" "src/CMakeFiles/gputn.dir/core/trigger_table.cpp.o.d"
  "/root/repo/src/core/triggered.cpp" "src/CMakeFiles/gputn.dir/core/triggered.cpp.o" "gcc" "src/CMakeFiles/gputn.dir/core/triggered.cpp.o.d"
  "/root/repo/src/cpu/cpu.cpp" "src/CMakeFiles/gputn.dir/cpu/cpu.cpp.o" "gcc" "src/CMakeFiles/gputn.dir/cpu/cpu.cpp.o.d"
  "/root/repo/src/gpu/gpu.cpp" "src/CMakeFiles/gputn.dir/gpu/gpu.cpp.o" "gcc" "src/CMakeFiles/gputn.dir/gpu/gpu.cpp.o.d"
  "/root/repo/src/gpu/launch_model.cpp" "src/CMakeFiles/gputn.dir/gpu/launch_model.cpp.o" "gcc" "src/CMakeFiles/gputn.dir/gpu/launch_model.cpp.o.d"
  "/root/repo/src/mem/dma.cpp" "src/CMakeFiles/gputn.dir/mem/dma.cpp.o" "gcc" "src/CMakeFiles/gputn.dir/mem/dma.cpp.o.d"
  "/root/repo/src/mem/memory.cpp" "src/CMakeFiles/gputn.dir/mem/memory.cpp.o" "gcc" "src/CMakeFiles/gputn.dir/mem/memory.cpp.o.d"
  "/root/repo/src/net/fabric.cpp" "src/CMakeFiles/gputn.dir/net/fabric.cpp.o" "gcc" "src/CMakeFiles/gputn.dir/net/fabric.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/CMakeFiles/gputn.dir/net/link.cpp.o" "gcc" "src/CMakeFiles/gputn.dir/net/link.cpp.o.d"
  "/root/repo/src/net/switch.cpp" "src/CMakeFiles/gputn.dir/net/switch.cpp.o" "gcc" "src/CMakeFiles/gputn.dir/net/switch.cpp.o.d"
  "/root/repo/src/nic/nic.cpp" "src/CMakeFiles/gputn.dir/nic/nic.cpp.o" "gcc" "src/CMakeFiles/gputn.dir/nic/nic.cpp.o.d"
  "/root/repo/src/rt/collectives.cpp" "src/CMakeFiles/gputn.dir/rt/collectives.cpp.o" "gcc" "src/CMakeFiles/gputn.dir/rt/collectives.cpp.o.d"
  "/root/repo/src/rt/runtime.cpp" "src/CMakeFiles/gputn.dir/rt/runtime.cpp.o" "gcc" "src/CMakeFiles/gputn.dir/rt/runtime.cpp.o.d"
  "/root/repo/src/sim/log.cpp" "src/CMakeFiles/gputn.dir/sim/log.cpp.o" "gcc" "src/CMakeFiles/gputn.dir/sim/log.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/gputn.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/gputn.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/gputn.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/gputn.dir/sim/stats.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/gputn.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/gputn.dir/sim/trace.cpp.o.d"
  "/root/repo/src/workloads/allreduce.cpp" "src/CMakeFiles/gputn.dir/workloads/allreduce.cpp.o" "gcc" "src/CMakeFiles/gputn.dir/workloads/allreduce.cpp.o.d"
  "/root/repo/src/workloads/broadcast.cpp" "src/CMakeFiles/gputn.dir/workloads/broadcast.cpp.o" "gcc" "src/CMakeFiles/gputn.dir/workloads/broadcast.cpp.o.d"
  "/root/repo/src/workloads/dl_projection.cpp" "src/CMakeFiles/gputn.dir/workloads/dl_projection.cpp.o" "gcc" "src/CMakeFiles/gputn.dir/workloads/dl_projection.cpp.o.d"
  "/root/repo/src/workloads/dl_traces.cpp" "src/CMakeFiles/gputn.dir/workloads/dl_traces.cpp.o" "gcc" "src/CMakeFiles/gputn.dir/workloads/dl_traces.cpp.o.d"
  "/root/repo/src/workloads/jacobi.cpp" "src/CMakeFiles/gputn.dir/workloads/jacobi.cpp.o" "gcc" "src/CMakeFiles/gputn.dir/workloads/jacobi.cpp.o.d"
  "/root/repo/src/workloads/microbench.cpp" "src/CMakeFiles/gputn.dir/workloads/microbench.cpp.o" "gcc" "src/CMakeFiles/gputn.dir/workloads/microbench.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
